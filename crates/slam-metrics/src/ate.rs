//! Absolute trajectory error (ATE).
//!
//! The SLAMBench accuracy metric: per-frame Euclidean distance between the
//! estimated and ground-truth camera positions. The paper's quality
//! constraint is `Max ATE < 5 cm`.
//!
//! Optionally the estimated trajectory is rigidly aligned to the ground
//! truth first (Horn's closed-form quaternion method), as the TUM RGB-D
//! and ICL-NUIM evaluation tools do; SLAMBench-style evaluation (shared
//! initial pose) uses [`Alignment::None`].

use serde::{Deserialize, Serialize};
use slam_math::solve::jacobi_eigen;
use slam_math::stats::Summary;
use slam_math::{Mat3, Quat, Se3, Vec3};
use std::fmt;

/// How to register the estimated trajectory onto the ground truth before
/// computing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Alignment {
    /// Compare trajectories in their native frames (SLAMBench style:
    /// the pipeline was seeded with the ground-truth initial pose).
    #[default]
    None,
    /// Align by mapping the first estimated pose onto the first
    /// ground-truth pose.
    FirstPose,
    /// Best rigid alignment over the whole trajectory (Horn 1987).
    Horn,
}

/// Options for [`ate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AteOptions {
    /// Trajectory registration mode.
    pub alignment: Alignment,
}

/// Error returned by [`ate`] and [`crate::rpe::rpe`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// The two trajectories have different lengths.
    LengthMismatch {
        /// Estimated trajectory length.
        estimated: usize,
        /// Ground-truth trajectory length.
        ground_truth: usize,
    },
    /// The trajectories are empty (or too short for the metric).
    TooShort,
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::LengthMismatch {
                estimated,
                ground_truth,
            } => write!(
                f,
                "trajectory length mismatch: {estimated} estimated vs {ground_truth} ground truth"
            ),
            TrajectoryError::TooShort => write!(f, "trajectory too short for this metric"),
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// The ATE of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AteResult {
    /// Per-frame translational error in metres.
    pub errors: Vec<f64>,
    /// Maximum error ("Max ATE", the paper's accuracy axis).
    pub max: f64,
    /// Mean error.
    pub mean: f64,
    /// Root-mean-square error (what the TUM tool reports).
    pub rmse: f64,
    /// Median error.
    pub median: f64,
}

impl fmt::Display for AteResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ATE max={:.4} m mean={:.4} m rmse={:.4} m median={:.4} m (n={})",
            self.max,
            self.mean,
            self.rmse,
            self.median,
            self.errors.len()
        )
    }
}

/// Computes the absolute trajectory error of `estimated` against
/// `ground_truth`.
///
/// # Errors
///
/// Returns [`TrajectoryError`] when the trajectories differ in length or
/// are empty.
pub fn ate(
    estimated: &[Se3],
    ground_truth: &[Se3],
    options: AteOptions,
) -> Result<AteResult, TrajectoryError> {
    if estimated.len() != ground_truth.len() {
        return Err(TrajectoryError::LengthMismatch {
            estimated: estimated.len(),
            ground_truth: ground_truth.len(),
        });
    }
    if estimated.is_empty() {
        return Err(TrajectoryError::TooShort);
    }
    let aligned: Vec<Se3> = match options.alignment {
        Alignment::None => estimated.to_vec(),
        Alignment::FirstPose => {
            let correction = ground_truth[0] * estimated[0].inverse();
            estimated.iter().map(|p| correction * *p).collect()
        }
        Alignment::Horn => {
            let correction = horn_alignment(estimated, ground_truth);
            estimated.iter().map(|p| correction * *p).collect()
        }
    };
    let errors: Vec<f64> = aligned
        .iter()
        .zip(ground_truth)
        .map(|(e, g)| f64::from(e.translation_distance(g)))
        .collect();
    let summary = Summary::of(&errors);
    Ok(AteResult {
        max: summary.max,
        mean: summary.mean,
        rmse: summary.rms,
        median: summary.median,
        errors,
    })
}

/// Computes the rigid transform `T` minimising
/// `Σ ‖T·est_i − gt_i‖²` over the trajectory positions (Horn's
/// closed-form quaternion solution, no scale).
/// Degenerate input (empty or length-mismatched trajectories, which the
/// [`ate`] entry point already rejects) yields the identity transform.
pub fn horn_alignment(estimated: &[Se3], ground_truth: &[Se3]) -> Se3 {
    debug_assert_eq!(
        estimated.len(),
        ground_truth.len(),
        "trajectory lengths must match"
    );
    if estimated.is_empty() || estimated.len() != ground_truth.len() {
        return Se3::IDENTITY;
    }
    let n = estimated.len() as f32;
    let mean = |poses: &[Se3]| -> Vec3 {
        poses
            .iter()
            .fold(Vec3::ZERO, |acc, p| acc + p.translation())
            * (1.0 / n)
    };
    let mu_e = mean(estimated);
    let mu_g = mean(ground_truth);
    // cross-covariance of centred positions
    let mut cov = Mat3::ZERO;
    for (e, g) in estimated.iter().zip(ground_truth) {
        let a = e.translation() - mu_e;
        let b = g.translation() - mu_g;
        // Horn's S matrix: S[i][j] = Σ a_i b_j, rotating a (estimated) onto
        // b (ground truth)
        cov = cov + Mat3::outer(a, b);
    }
    // Horn's symmetric 4x4 matrix from the covariance
    let s = &cov.m;
    let trace = f64::from(cov.trace());
    let q_mat = [
        [
            trace,
            f64::from(s[1][2] - s[2][1]),
            f64::from(s[2][0] - s[0][2]),
            f64::from(s[0][1] - s[1][0]),
        ],
        [
            f64::from(s[1][2] - s[2][1]),
            f64::from(2.0 * s[0][0]) - trace,
            f64::from(s[0][1] + s[1][0]),
            f64::from(s[2][0] + s[0][2]),
        ],
        [
            f64::from(s[2][0] - s[0][2]),
            f64::from(s[0][1] + s[1][0]),
            f64::from(2.0 * s[1][1]) - trace,
            f64::from(s[1][2] + s[2][1]),
        ],
        [
            f64::from(s[0][1] - s[1][0]),
            f64::from(s[2][0] + s[0][2]),
            f64::from(s[1][2] + s[2][1]),
            f64::from(2.0 * s[2][2]) - trace,
        ],
    ];
    let (_, vecs) = jacobi_eigen(q_mat);
    let q = Quat::new(
        vecs[0][0] as f32,
        vecs[0][1] as f32,
        vecs[0][2] as f32,
        vecs[0][3] as f32,
    )
    .normalized();
    let r = q.to_mat3();
    let t = mu_g - r * mu_e;
    Se3::new(r, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_line(n: usize) -> Vec<Se3> {
        (0..n)
            .map(|i| Se3::from_translation(Vec3::new(i as f32 * 0.1, 0.0, 0.0)))
            .collect()
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let gt = straight_line(10);
        let r = ate(&gt, &gt, AteOptions::default()).unwrap();
        assert!(r.max < 1e-9);
        assert!(r.rmse < 1e-9);
        assert_eq!(r.errors.len(), 10);
    }

    #[test]
    fn constant_offset_is_reported_unaligned() {
        let gt = straight_line(10);
        let est: Vec<Se3> = gt
            .iter()
            .map(|p| Se3::from_translation(Vec3::new(0.0, 0.03, 0.0)) * *p)
            .collect();
        let r = ate(&est, &gt, AteOptions::default()).unwrap();
        assert!((r.max - 0.03).abs() < 1e-6);
        assert!((r.mean - 0.03).abs() < 1e-6);
    }

    #[test]
    fn first_pose_alignment_removes_initial_offset() {
        let gt = straight_line(10);
        let offset = Se3::from_axis_angle(Vec3::Y, 0.2, Vec3::new(1.0, 2.0, 3.0));
        let est: Vec<Se3> = gt.iter().map(|p| offset * *p).collect();
        let r = ate(
            &est,
            &gt,
            AteOptions {
                alignment: Alignment::FirstPose,
            },
        )
        .unwrap();
        assert!(
            r.max < 1e-5,
            "rigidly offset trajectory must align, max {}",
            r.max
        );
    }

    #[test]
    fn horn_alignment_removes_global_transform() {
        // a 3-D looping trajectory so the alignment is well constrained
        let gt: Vec<Se3> = (0..30)
            .map(|i| {
                let t = i as f32 * 0.2;
                Se3::from_translation(Vec3::new(t.cos(), 0.5 * t.sin(), t * 0.1))
            })
            .collect();
        let offset =
            Se3::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.7, Vec3::new(-2.0, 1.0, 0.5));
        let est: Vec<Se3> = gt.iter().map(|p| offset * *p).collect();
        let r = ate(
            &est,
            &gt,
            AteOptions {
                alignment: Alignment::Horn,
            },
        )
        .unwrap();
        assert!(r.max < 1e-4, "Horn must recover the offset, max {}", r.max);
    }

    #[test]
    fn horn_alignment_beats_none_on_drifted_run() {
        let gt = straight_line(20);
        // simulated drift: error grows linearly
        let est: Vec<Se3> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| Se3::from_translation(Vec3::new(0.0, i as f32 * 0.002, 0.0)) * *p)
            .collect();
        let raw = ate(&est, &gt, AteOptions::default()).unwrap();
        let horn = ate(
            &est,
            &gt,
            AteOptions {
                alignment: Alignment::Horn,
            },
        )
        .unwrap();
        assert!(horn.rmse < raw.rmse);
    }

    #[test]
    fn mismatched_lengths_error() {
        let gt = straight_line(5);
        let est = straight_line(4);
        let err = ate(&est, &gt, AteOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            TrajectoryError::LengthMismatch {
                estimated: 4,
                ground_truth: 5
            }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn empty_trajectories_error() {
        let err = ate(&[], &[], AteOptions::default()).unwrap_err();
        assert_eq!(err, TrajectoryError::TooShort);
    }

    #[test]
    fn statistics_are_consistent() {
        let gt = straight_line(4);
        let est: Vec<Se3> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| Se3::from_translation(Vec3::new(0.0, 0.0, i as f32 * 0.01)) * *p)
            .collect();
        let r = ate(&est, &gt, AteOptions::default()).unwrap();
        // errors are 0, 0.01, 0.02, 0.03
        assert!((r.max - 0.03).abs() < 1e-6);
        assert!((r.mean - 0.015).abs() < 1e-6);
        assert!(r.rmse >= r.mean);
        assert!(r.median > 0.0 && r.median < r.max);
        assert!(format!("{r}").contains("max"));
    }
}
