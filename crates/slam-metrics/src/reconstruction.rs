//! Surface reconstruction quality, following the ICL-NUIM evaluation the
//! paper builds on: compare the reconstructed model against the known
//! synthetic scene.
//!
//! Two complementary numbers:
//!
//! * **accuracy** — how far reconstructed surface points are from the
//!   true surface (here: the scene's signed distance function),
//! * **completeness** — how much of the true surface was reconstructed
//!   (distance from true-surface samples to the nearest reconstructed
//!   point, via a uniform-grid nearest-neighbour index).

use slam_math::stats::Summary;
use slam_math::Vec3;

/// Reconstruction accuracy: distribution of `|sdf(p)|` over reconstructed
/// surface points `p`, where `sdf` is the ground-truth signed distance
/// function. Returns the all-zero summary for an empty point set.
pub fn accuracy(points: &[Vec3], sdf: impl Fn(Vec3) -> f32) -> Summary {
    let distances: Vec<f64> = points.iter().map(|&p| f64::from(sdf(p).abs())).collect();
    Summary::of(&distances)
}

/// A uniform-grid spatial index over a point set for approximate
/// nearest-neighbour distance queries.
///
/// Queries are exact up to the search radius passed at construction: a
/// query returns `None` when no point lies within one grid cell ring
/// (i.e. distance > ~2×`cell`), which the completeness metric treats as
/// "not reconstructed".
#[derive(Debug, Clone)]
pub struct PointGrid {
    cell: f32,
    origin: Vec3,
    dims: [usize; 3],
    /// CSR-style storage: `starts[c]..starts[c+1]` indexes `points`.
    starts: Vec<u32>,
    points: Vec<Vec3>,
}

impl PointGrid {
    /// Builds a grid with the given `cell` size over the bounding box of
    /// `points`. An empty input yields an empty grid (all queries miss).
    ///
    /// # Panics
    ///
    /// Panics when `cell <= 0`.
    pub fn build(points: &[Vec3], cell: f32) -> PointGrid {
        assert!(cell > 0.0, "cell size must be positive");
        if points.is_empty() {
            return PointGrid {
                cell,
                origin: Vec3::ZERO,
                dims: [0, 0, 0],
                starts: vec![0],
                points: Vec::new(),
            };
        }
        let mut lo = points[0];
        let mut hi = points[0];
        for &p in points {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        let dims = [
            ((hi.x - lo.x) / cell) as usize + 1,
            ((hi.y - lo.y) / cell) as usize + 1,
            ((hi.z - lo.z) / cell) as usize + 1,
        ];
        let n_cells = dims[0] * dims[1] * dims[2];
        let cell_of = |p: Vec3| -> usize {
            let cx = (((p.x - lo.x) / cell) as usize).min(dims[0] - 1);
            let cy = (((p.y - lo.y) / cell) as usize).min(dims[1] - 1);
            let cz = (((p.z - lo.z) / cell) as usize).min(dims[2] - 1);
            (cz * dims[1] + cy) * dims[0] + cx
        };
        // counting sort into CSR layout
        let mut counts = vec![0u32; n_cells + 1];
        for &p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut sorted = vec![Vec3::ZERO; points.len()];
        let mut cursor = counts.clone();
        for &p in points {
            let c = cell_of(p);
            sorted[cursor[c] as usize] = p;
            cursor[c] += 1;
        }
        PointGrid {
            cell,
            origin: lo,
            dims,
            starts: counts,
            points: sorted,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Distance from `q` to the nearest indexed point, searching the 3×3×3
    /// cell neighbourhood; `None` when nothing lies that close.
    pub fn nearest_distance(&self, q: Vec3) -> Option<f32> {
        if self.points.is_empty() {
            return None;
        }
        let c = (q - self.origin) * (1.0 / self.cell);
        let (cx, cy, cz) = (
            c.x.floor() as isize,
            c.y.floor() as isize,
            c.z.floor() as isize,
        );
        let mut best: Option<f32> = None;
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let (x, y, z) = (cx + dx, cy + dy, cz + dz);
                    if x < 0
                        || y < 0
                        || z < 0
                        || x as usize >= self.dims[0]
                        || y as usize >= self.dims[1]
                        || z as usize >= self.dims[2]
                    {
                        continue;
                    }
                    let cell_idx =
                        (z as usize * self.dims[1] + y as usize) * self.dims[0] + x as usize;
                    let lo = self.starts[cell_idx] as usize;
                    let hi = self.starts[cell_idx + 1] as usize;
                    for &p in &self.points[lo..hi] {
                        let d = (p - q).norm();
                        if best.is_none_or(|b| d < b) {
                            best = Some(d);
                        }
                    }
                }
            }
        }
        best
    }
}

/// Reconstruction completeness: the fraction of `surface_samples`
/// (points on the true surface) that have a reconstructed point within
/// `tolerance` metres. Also returns the distance summary of the *found*
/// samples.
pub fn completeness(
    surface_samples: &[Vec3],
    reconstruction: &PointGrid,
    tolerance: f32,
) -> (f64, Summary) {
    if surface_samples.is_empty() {
        return (0.0, Summary::default());
    }
    let mut found = 0usize;
    let mut distances = Vec::new();
    for &s in surface_samples {
        if let Some(d) = reconstruction.nearest_distance(s) {
            if d <= tolerance {
                found += 1;
                distances.push(f64::from(d));
            }
        }
    }
    (
        found as f64 / surface_samples.len() as f64,
        Summary::of(&distances),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_points(radius: f32, n: usize) -> Vec<Vec3> {
        // deterministic spiral sampling of a sphere
        (0..n)
            .map(|i| {
                let t = (i as f32 + 0.5) / n as f32;
                let phi = (1.0 - 2.0 * t).acos();
                let theta = std::f32::consts::PI * (1.0 + 5.0f32.sqrt()) * i as f32;
                Vec3::new(
                    radius * phi.sin() * theta.cos(),
                    radius * phi.sin() * theta.sin(),
                    radius * phi.cos(),
                )
            })
            .collect()
    }

    #[test]
    fn accuracy_of_exact_surface_is_zero() {
        let pts = sphere_points(1.0, 200);
        let s = accuracy(&pts, |p| p.norm() - 1.0);
        assert!(s.max < 1e-5, "max {}", s.max);
    }

    #[test]
    fn accuracy_reports_offsets() {
        let pts = sphere_points(1.1, 100); // 10 cm off a unit sphere
        let s = accuracy(&pts, |p| p.norm() - 1.0);
        assert!((s.mean - 0.1).abs() < 1e-4);
        assert_eq!(accuracy(&[], |_| 0.0), Summary::default());
    }

    #[test]
    fn grid_finds_nearest() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
        ];
        let grid = PointGrid::build(&pts, 0.5);
        assert_eq!(grid.len(), 3);
        let d = grid.nearest_distance(Vec3::new(0.1, 0.0, 0.0)).unwrap();
        assert!((d - 0.1).abs() < 1e-6);
        // far query misses (outside the 3x3x3 neighbourhood)
        assert!(grid.nearest_distance(Vec3::new(10.0, 10.0, 10.0)).is_none());
    }

    #[test]
    fn grid_handles_empty_and_single() {
        let empty = PointGrid::build(&[], 0.1);
        assert!(empty.is_empty());
        assert!(empty.nearest_distance(Vec3::ZERO).is_none());
        let single = PointGrid::build(&[Vec3::ONE], 0.1);
        let d = single.nearest_distance(Vec3::new(1.0, 1.0, 1.05)).unwrap();
        assert!((d - 0.05).abs() < 1e-6);
    }

    #[test]
    fn grid_matches_brute_force() {
        let pts = sphere_points(0.8, 300);
        let grid = PointGrid::build(&pts, 0.1);
        for q in sphere_points(0.82, 40) {
            let brute = pts
                .iter()
                .map(|&p| (p - q).norm())
                .fold(f32::INFINITY, f32::min);
            if let Some(d) = grid.nearest_distance(q) {
                // grid may miss points beyond its search ring, but when it
                // answers it must answer with a distance no worse than one
                // ring; for dense data it matches brute force
                assert!((d - brute).abs() < 1e-5, "grid {d} vs brute {brute}");
            } else {
                assert!(brute > 0.1, "grid missed a close point at {brute}");
            }
        }
    }

    #[test]
    fn completeness_full_and_partial() {
        let truth = sphere_points(1.0, 400);
        // full reconstruction
        let grid = PointGrid::build(&truth, 0.05);
        let (frac, dists) = completeness(&truth, &grid, 0.01);
        assert!((frac - 1.0).abs() < 1e-9);
        assert!(dists.max < 1e-6);
        // half reconstruction: only the z > 0 hemisphere
        let half: Vec<Vec3> = truth.iter().copied().filter(|p| p.z > 0.0).collect();
        let grid = PointGrid::build(&half, 0.05);
        let (frac, _) = completeness(&truth, &grid, 0.05);
        assert!(frac > 0.4 && frac < 0.75, "hemisphere completeness {frac}");
        // empty reconstruction
        let (frac, _) = completeness(&truth, &PointGrid::build(&[], 0.05), 0.05);
        assert_eq!(frac, 0.0);
    }
}
