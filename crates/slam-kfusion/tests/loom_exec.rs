//! Model-checked exploration of the exec-pool protocol.
//!
//! Compiled (and run in CI) only under `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p slam-kfusion --test loom_exec
//! ```
//!
//! Under that cfg the pool's sync facade swaps `std::sync` for the
//! in-tree model checker (`slam_kfusion::exec::model`), and these tests
//! drive the *production* protocol code — `PoolShared::worker_loop`,
//! `PoolShared::run_tasks_on` (including the lifetime-erasure site),
//! `TaskGroup` claiming/completion — across systematically explored
//! thread interleavings. Assertions inside each scenario hold on every
//! schedule; a deadlock or unexpected panic on any schedule fails the
//! test with the offending decision trace.
//!
//! Scenario sizes are deliberately tiny: model checking pays
//! exponentially for every extra visible operation. Two jobs and one or
//! two workers already cover every protocol transition (claim races,
//! last-job latching, straggler pops, shutdown wakeups).

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};

use slam_kfusion::exec::model::{self, CheckOptions};
use slam_kfusion::exec::{Job, PoolShared, Task, TaskGroup};

/// Silences panic reports from model threads (named `model-N`): task
/// panics are *scenario inputs* here, re-thrown and asserted on by the
/// submitter, and aborted schedules unwind every model thread by design.
/// Panics on the test thread itself (real failures) still print.
fn quiet_model_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let on_model_thread = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("model-"));
            if !on_model_thread {
                prev(info);
            }
        }));
    });
}

/// The core protocol, fully exhaustively (no preemption bound): one
/// worker and the submitter race to claim a single job directly on a
/// `TaskGroup`; on every interleaving the job runs exactly once, the
/// finished latch flips only after it ran, and no slot stays occupied.
#[test]
fn claim_and_latch_exhaustive() {
    quiet_model_panics();
    let report = model::check_with(
        CheckOptions {
            preemption_bound: None,
            max_schedules: 2_000_000,
        },
        || {
            // instrumentation uses plain std atomics: invisible to the
            // scheduler, so they cost no extra interleavings
            let runs = Arc::new(AtomicUsize::new(0));
            let r = Arc::clone(&runs);
            let group = Arc::new(TaskGroup::new(vec![Box::new(move || {
                r.fetch_add(1, Ordering::SeqCst);
            }) as Job]));
            let helper = Arc::clone(&group);
            model::spawn(move || helper.run_available());
            group.run_available();
            group.wait_finished();
            assert_eq!(runs.load(Ordering::SeqCst), 1, "job must run exactly once");
            assert_eq!(group.completed(), 1);
            assert!(group.all_jobs_consumed());
        },
    );
    assert!(
        report.schedules > 1,
        "exploration found only one schedule — the model is not interleaving"
    );
}

/// The full submission protocol over the queue: a worker runs
/// `worker_loop`, the submitter runs `run_tasks_on` (lifetime-erased
/// borrowing jobs, helper enlistment, result collection) and then shuts
/// the pool down. Every schedule must see each job run once, results in
/// submission order, and the worker exit (a stuck worker deadlocks the
/// model and fails the test).
#[test]
fn submission_protocol_with_worker() {
    quiet_model_panics();
    model::check(|| {
        let shared = Arc::new(PoolShared::new());
        let worker = Arc::clone(&shared);
        model::spawn(move || worker.worker_loop());
        let runs = [AtomicUsize::new(0), AtomicUsize::new(0)];
        let tasks: Vec<Task<'_, usize>> = runs
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    slot.fetch_add(1, Ordering::SeqCst);
                    i * 10
                }) as Task<'_, usize>
            })
            .collect();
        let out = shared.run_tasks_on(1, tasks);
        assert_eq!(out, vec![0, 10], "results must arrive in submission order");
        for (i, slot) in runs.iter().enumerate() {
            assert_eq!(
                slot.load(Ordering::SeqCst),
                1,
                "job {i} must run exactly once"
            );
        }
        shared.request_shutdown();
    });
}

/// Queue stragglers: more queue entries than workers means a leftover
/// `Arc<TaskGroup>` copy is popped after the group already finished —
/// possibly after `run_tasks_on` returned and the borrowed task storage
/// is gone. The straggler must find only empty job slots (invariant 3 of
/// the `erase_lifetime` safety argument); running anything twice would
/// double-count `runs` and fail the exactly-once assertion.
#[test]
fn queue_straggler_finds_empty_slots() {
    quiet_model_panics();
    model::check(|| {
        let shared = Arc::new(PoolShared::new());
        let worker = Arc::clone(&shared);
        model::spawn(move || worker.worker_loop());
        let runs = AtomicUsize::new(0);
        let tasks: Vec<Task<'_, ()>> = (0..2)
            .map(|_| {
                Box::new(|| {
                    runs.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_, ()>
            })
            .collect();
        // two queue entries, one worker: the second entry is a guaranteed
        // straggler on every schedule
        let out = shared.run_tasks_on(2, tasks);
        assert_eq!(out.len(), 2);
        assert_eq!(runs.load(Ordering::SeqCst), 2, "each job exactly once");
        shared.request_shutdown();
    });
}

/// Panic forwarding: one of the two jobs panics. On every schedule the
/// panic must be captured by the claimer (worker or submitter), the
/// group must still finish (the non-panicking job runs, the latch
/// flips), and `run_tasks_on` must re-throw the original payload to the
/// submitter after the group completed.
#[test]
fn task_panic_is_captured_and_rethrown() {
    quiet_model_panics();
    model::check(|| {
        let shared = Arc::new(PoolShared::new());
        let worker = Arc::clone(&shared);
        model::spawn(move || worker.worker_loop());
        let survivor_ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Task<'_, ()>> = vec![
                Box::new(|| panic!("injected task panic")),
                Box::new(|| {
                    survivor_ran.fetch_add(1, Ordering::SeqCst);
                }),
            ];
            shared.run_tasks_on(1, tasks);
        }));
        let payload = result.expect_err("the task panic must reach the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "injected task panic");
        assert_eq!(
            survivor_ran.load(Ordering::SeqCst),
            1,
            "the panic must not prevent the other job from running"
        );
        shared.request_shutdown();
    });
}

/// Shutdown liveness with multiple workers: both workers must observe
/// the shutdown flag and exit on every interleaving of the request with
/// their wait/wake cycle — a missed wakeup here would deadlock the model
/// (no runnable thread, workers not finished) and fail the test.
#[test]
fn shutdown_wakes_all_workers() {
    quiet_model_panics();
    model::check(|| {
        let shared = Arc::new(PoolShared::new());
        for _ in 0..2 {
            let worker = Arc::clone(&shared);
            model::spawn(move || worker.worker_loop());
        }
        let ran = AtomicUsize::new(0);
        let tasks: Vec<Task<'_, ()>> = (0..2)
            .map(|_| {
                Box::new(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                }) as Task<'_, ()>
            })
            .collect();
        shared.run_tasks_on(2, tasks);
        assert_eq!(ran.load(Ordering::SeqCst), 2);
        shared.request_shutdown();
    });
}

/// Nested submission: a job executed by the pool submits its own task
/// group to the same pool and drains it in place. The claimer of the
/// outer job must complete the inner group without deadlock on every
/// schedule — this is the "nesting cannot deadlock" guarantee from the
/// module docs.
#[test]
fn nested_submission_cannot_deadlock() {
    quiet_model_panics();
    model::check(|| {
        let shared = Arc::new(PoolShared::new());
        let worker = Arc::clone(&shared);
        model::spawn(move || worker.worker_loop());
        let inner_ran = Arc::new(AtomicUsize::new(0));
        let outer: Vec<Task<'_, usize>> = vec![{
            let shared = Arc::clone(&shared);
            let inner_ran = Arc::clone(&inner_ran);
            Box::new(move || {
                let inner: Vec<Task<'_, usize>> = vec![{
                    let inner_ran = Arc::clone(&inner_ran);
                    Box::new(move || {
                        inner_ran.fetch_add(1, Ordering::SeqCst);
                        7usize
                    }) as Task<'_, usize>
                }];
                shared.run_tasks_on(1, inner)[0]
            })
        }];
        let out = shared.run_tasks_on(1, outer);
        assert_eq!(out, vec![7]);
        assert_eq!(inner_ran.load(Ordering::SeqCst), 1);
        shared.request_shutdown();
    });
}

/// The model checker itself must not be vacuous: a protocol *misuse* —
/// waiting on a group nobody executes — has to be reported as a
/// deadlock, with the decision trace, rather than hanging or passing.
#[test]
fn model_reports_deadlock_with_trace() {
    quiet_model_panics();
    let result = catch_unwind(|| {
        model::check(|| {
            let group = Arc::new(TaskGroup::new(vec![Box::new(|| ()) as Job]));
            group.wait_finished(); // nobody ever runs the job
        });
    });
    let payload = result.expect_err("an all-blocked state must fail the check");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock") && msg.contains("decision trace"),
        "unexpected failure message: {msg}"
    );
}
