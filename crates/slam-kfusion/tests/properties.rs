//! Property-based tests for the KinectFusion substrate's invariants.

use proptest::prelude::*;
use slam_kfusion::image::Image2D;
use slam_kfusion::preprocess::{
    bilateral_filter, depth2vertex, half_sample, mm2meters, vertex2normal,
};
use slam_kfusion::tsdf::TsdfVolume;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};

fn small_depth_image() -> impl Strategy<Value = Image2D<f32>> {
    proptest::collection::vec(prop_oneof![3 => 0.5f32..4.0, 1 => Just(0.0f32)], 16 * 12)
        .prop_map(|v| Image2D::from_vec(16, 12, v))
}

proptest! {
    /// mm→m conversion preserves holes and scales values exactly.
    #[test]
    fn mm2meters_exact(values in proptest::collection::vec(0u16..8000, 8 * 6)) {
        let (m, _) = mm2meters(&values, 8, 6, 1);
        for (mm, metres) in values.iter().zip(m.as_slice()) {
            prop_assert!((f32::from(*mm) / 1000.0 - metres).abs() < 1e-6);
        }
    }

    /// The bilateral filter never inverts holes (0 stays 0, valid stays
    /// valid) and keeps output within the local value range.
    #[test]
    fn bilateral_range_preserving(depth in small_depth_image()) {
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        let (lo, hi) = depth
            .as_slice()
            .iter()
            .filter(|&&d| d > 0.0)
            .fold((f32::INFINITY, 0.0f32), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        for (x, y, v) in f.enumerate_pixels() {
            let src = depth.get(x, y);
            if src <= 0.0 {
                prop_assert_eq!(v, 0.0, "hole filled at ({}, {})", x, y);
            } else {
                prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "out of range at ({x},{y}): {v}");
            }
        }
    }

    /// Half-sampling output values lie within the range of their source
    /// block (it is an average of a subset).
    #[test]
    fn half_sample_is_local_average(depth in small_depth_image()) {
        let (h, _) = half_sample(&depth, 0.1);
        for (x, y, v) in h.enumerate_pixels() {
            if v <= 0.0 {
                continue;
            }
            let mut lo = f32::INFINITY;
            let mut hi = 0.0f32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let d = depth.get(x * 2 + dx, y * 2 + dy);
                    if d > 0.0 {
                        lo = lo.min(d);
                        hi = hi.max(d);
                    }
                }
            }
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }

    /// Back-projected vertices reproduce their depth in z, and normals
    /// are unit or zero.
    #[test]
    fn vertex_and_normal_invariants(depth in small_depth_image()) {
        let cam = PinholeCamera::new(16, 12, 14.0, 14.0, 7.5, 5.5);
        let (v, _) = depth2vertex(&depth, &cam);
        for (x, y, p) in v.enumerate_pixels() {
            let d = depth.get(x, y);
            if d > 0.0 {
                prop_assert!((p.z - d).abs() < 1e-5);
            } else {
                prop_assert_eq!(p, Vec3::ZERO);
            }
        }
        let (n, _) = vertex2normal(&v);
        for (_, _, nv) in n.enumerate_pixels() {
            let len = nv.norm();
            prop_assert!(len < 1e-6 || (len - 1.0).abs() < 1e-3);
        }
    }

    /// TSDF invariants after arbitrary integrations: values stay in
    /// [-1, 1], weights in [0, max_weight].
    #[test]
    fn tsdf_bounds(
        wall in 0.8f32..2.5,
        frames in 1usize..5,
        mu in 0.05f32..0.3,
        max_weight in 1.0f32..10.0,
    ) {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(24, 3.0);
        let depth = Image2D::new(cam.width, cam.height, wall);
        let pose = Se3::from_translation(Vec3::new(1.5, 1.5, 0.0));
        for _ in 0..frames {
            vol.integrate(&depth, &cam, &pose, mu, max_weight);
        }
        for z in 0..24 {
            for y in 0..24 {
                for x in 0..24 {
                    let t = vol.voxel_tsdf(x, y, z);
                    let w = vol.voxel_weight(x, y, z);
                    prop_assert!((-1.0..=1.0).contains(&t), "tsdf {t} out of range");
                    prop_assert!(w >= 0.0 && w <= max_weight + 1e-6, "weight {w}");
                }
            }
        }
    }

    /// Trilinear sampling of the TSDF stays within the voxel value range.
    #[test]
    fn tsdf_sample_bounded(px in 0.2f32..2.8, py in 0.2f32..2.8, pz in 0.2f32..2.8) {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(24, 3.0);
        let depth = Image2D::new(cam.width, cam.height, 1.5f32);
        let pose = Se3::from_translation(Vec3::new(1.5, 1.5, 0.0));
        vol.integrate(&depth, &cam, &pose, 0.15, 100.0);
        if let Some(v) = vol.sample(Vec3::new(px, py, pz)) {
            prop_assert!((-1.0..=1.0).contains(&v));
        }
    }
}
