//! The KinectFusion algorithmic configuration — the design space of the
//! ISPASS'18 paper.

use crate::volume::VolumeBackend;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a [`KFusionConfig`] failed [`KFusionConfig::validate`].
///
/// Each variant carries the offending parameter and enough context to
/// build an actionable message, so callers (the evaluation engine, the
/// CLI) can surface a typed error instead of a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A discrete parameter took a value outside its allowed set.
    NotInSet {
        /// Which parameter is invalid.
        parameter: &'static str,
        /// The rejected value.
        value: usize,
        /// The values the parameter accepts.
        allowed: &'static [usize],
    },
    /// A numeric parameter fell outside its legal interval. NaN lands
    /// here too: it compares outside every interval.
    OutOfRange {
        /// Which parameter is invalid.
        parameter: &'static str,
        /// The rejected value (integral parameters are widened).
        value: f64,
        /// Smallest acceptable value.
        min: f64,
        /// Largest acceptable value (`f64::INFINITY` = unbounded).
        max: f64,
    },
    /// `pyramid_iterations` is all zeros — the tracker would never
    /// iterate, so no frame could ever be aligned.
    NoPyramidIterations,
}

impl ConfigError {
    /// The name of the offending parameter.
    pub fn parameter(&self) -> &'static str {
        match self {
            ConfigError::NotInSet { parameter, .. } | ConfigError::OutOfRange { parameter, .. } => {
                parameter
            }
            ConfigError::NoPyramidIterations => "pyramid_iterations",
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotInSet {
                parameter,
                value,
                allowed,
            } => write!(f, "invalid {parameter}: {value} not in {allowed:?}"),
            ConfigError::OutOfRange {
                parameter,
                value,
                min,
                max,
            } => {
                if max.is_infinite() {
                    write!(f, "invalid {parameter}: {value} must be at least {min}")
                } else {
                    write!(f, "invalid {parameter}: {value} not in [{min}, {max}]")
                }
            }
            ConfigError::NoPyramidIterations => {
                write!(
                    f,
                    "invalid pyramid_iterations: at least one level needs an iteration"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// What the ICP tracker aligns each new frame against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrackingReference {
    /// The raycast prediction of the fused TSDF model — KinectFusion's
    /// defining choice, which suppresses drift.
    #[default]
    Model,
    /// The previous frame's measured maps (classical frame-to-frame ICP).
    /// Cheaper (no raycast needed for tracking) but accumulates drift;
    /// kept as the ablation baseline.
    PreviousFrame,
}

/// The algorithmic parameters of the KinectFusion pipeline, matching the
/// knobs SLAMBench exposes and the PACT'16 / ISPASS'18 design-space
/// exploration sweeps.
///
/// Defaults are the SLAMBench defaults (the paper's "default
/// configuration" baseline).
///
/// # Examples
///
/// ```
/// use slam_kfusion::KFusionConfig;
/// let mut config = KFusionConfig::default();
/// assert_eq!(config.volume_resolution, 256);
/// config.volume_resolution = 64;
/// config.compute_size_ratio = 2;
/// config.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KFusionConfig {
    /// Input down-sampling ratio: the pipeline runs at
    /// `input_resolution / compute_size_ratio`. One of {1, 2, 4, 8}.
    pub compute_size_ratio: usize,
    /// ICP convergence threshold on the norm of the 6-DoF update twist.
    pub icp_threshold: f32,
    /// TSDF truncation distance in metres.
    pub mu: f32,
    /// TSDF volume resolution (voxels per side).
    pub volume_resolution: usize,
    /// TSDF volume physical size in metres (cube side).
    pub volume_size: f32,
    /// ICP iterations per pyramid level, **finest first**
    /// (level 0 = full tracking resolution).
    pub pyramid_iterations: [usize; 3],
    /// Track only every n-th frame (1 = every frame). Untracked frames
    /// inherit the previous pose.
    pub tracking_rate: usize,
    /// Integrate only every n-th frame (1 = every frame).
    pub integration_rate: usize,
    /// Raycast the model only every n-th frame (1 = every frame).
    /// Skipping raycasts reuses the previous model prediction for ICP.
    pub raycast_rate: usize,
    /// Whether to run the bilateral filter on the input depth.
    pub bilateral_filter: bool,
    /// Maximum TSDF integration weight (running-average window).
    pub max_weight: f32,
    /// ICP outlier rejection: maximum distance between associated points
    /// (metres).
    pub icp_dist_threshold: f32,
    /// ICP outlier rejection: maximum angle between associated normals
    /// (radians).
    pub icp_normal_threshold: f32,
    /// Minimum fraction of tracked pixels with valid associations for a
    /// track to be declared successful.
    pub min_track_fraction: f32,
    /// What the tracker aligns against (frame-to-model vs
    /// frame-to-frame).
    pub tracking_reference: TrackingReference,
    /// Worker threads for the parallel kernels (`0` = all available).
    /// Kernel outputs are bit-identical across thread counts, so this is
    /// a pure performance knob — a hardware/software co-design parameter
    /// for the DSE. Capped by the machine size and any active
    /// [`crate::exec::with_thread_budget`].
    #[serde(default)]
    pub threads: usize,
    /// TSDF storage backend: dense `res³` arrays or sparse 8³ bricks
    /// allocated on first touch. Pure performance/memory knob — both
    /// backends produce bit-identical voxel values inside the truncation
    /// band (see [`crate::volume`]).
    #[serde(default)]
    pub volume_backend: VolumeBackend,
}

impl Default for KFusionConfig {
    fn default() -> KFusionConfig {
        KFusionConfig {
            compute_size_ratio: 1,
            icp_threshold: 1e-5,
            mu: 0.1,
            volume_resolution: 256,
            volume_size: 4.0,
            pyramid_iterations: [10, 5, 4],
            tracking_rate: 1,
            integration_rate: 1,
            raycast_rate: 1,
            bilateral_filter: true,
            max_weight: 100.0,
            icp_dist_threshold: 0.1,
            icp_normal_threshold: 0.8,
            min_track_fraction: 0.1,
            tracking_reference: TrackingReference::Model,
            threads: 0,
            volume_backend: VolumeBackend::Dense,
        }
    }
}

impl KFusionConfig {
    /// A small configuration for unit tests: 64³ volume, quarter-size
    /// compute, few iterations — runs the whole pipeline in milliseconds.
    pub fn fast_test() -> KFusionConfig {
        KFusionConfig {
            compute_size_ratio: 1,
            volume_resolution: 64,
            pyramid_iterations: [4, 3, 2],
            ..KFusionConfig::default()
        }
    }

    /// The resolution the pipeline actually computes at, given the sensor
    /// resolution.
    pub fn compute_resolution(&self, width: usize, height: usize) -> (usize, usize) {
        (
            width / self.compute_size_ratio,
            height / self.compute_size_ratio,
        )
    }

    /// Side length of one voxel in metres.
    pub fn voxel_size(&self) -> f32 {
        self.volume_size / self.volume_resolution as f32
    }

    /// Total ICP iterations across the pyramid (an upper bound actually
    /// used per tracked frame).
    pub fn total_icp_iterations(&self) -> usize {
        self.pyramid_iterations.iter().sum()
    }

    /// Checks that every parameter is inside its legal range.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] for the first offending
    /// parameter.
    // negated comparisons are deliberate: `!(x > 0.0)` also rejects NaN
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn range(parameter: &'static str, value: f64, min: f64, max: f64) -> ConfigError {
            ConfigError::OutOfRange {
                parameter,
                value,
                min,
                max,
            }
        }
        if ![1, 2, 4, 8].contains(&self.compute_size_ratio) {
            return Err(ConfigError::NotInSet {
                parameter: "compute_size_ratio",
                value: self.compute_size_ratio,
                allowed: &[1, 2, 4, 8],
            });
        }
        if !(self.icp_threshold > 0.0) || self.icp_threshold > 1.0 {
            return Err(range(
                "icp_threshold",
                f64::from(self.icp_threshold),
                0.0,
                1.0,
            ));
        }
        if !(self.mu > 0.0) || self.mu > 1.0 {
            return Err(range("mu", f64::from(self.mu), 0.0, 1.0));
        }
        if self.volume_resolution < 16 || self.volume_resolution > 1024 {
            return Err(range(
                "volume_resolution",
                self.volume_resolution as f64,
                16.0,
                1024.0,
            ));
        }
        if !(self.volume_size > 0.0) || self.volume_size > 32.0 {
            return Err(range("volume_size", f64::from(self.volume_size), 0.0, 32.0));
        }
        if self.pyramid_iterations.iter().all(|&n| n == 0) {
            return Err(ConfigError::NoPyramidIterations);
        }
        if let Some(&n) = self.pyramid_iterations.iter().find(|&&n| n > 100) {
            return Err(range("pyramid_iterations", n as f64, 0.0, 100.0));
        }
        for (name, v) in [
            ("tracking_rate", self.tracking_rate),
            ("integration_rate", self.integration_rate),
            ("raycast_rate", self.raycast_rate),
        ] {
            if v == 0 || v > 30 {
                return Err(range(name, v as f64, 1.0, 30.0));
            }
        }
        if !(self.min_track_fraction >= 0.0 && self.min_track_fraction <= 1.0) {
            return Err(range(
                "min_track_fraction",
                f64::from(self.min_track_fraction),
                0.0,
                1.0,
            ));
        }
        if !(self.max_weight >= 1.0) {
            return Err(range(
                "max_weight",
                f64::from(self.max_weight),
                1.0,
                f64::INFINITY,
            ));
        }
        if self.threads > 1024 {
            return Err(range("threads", self.threads as f64, 0.0, 1024.0));
        }
        Ok(())
    }
}

impl fmt::Display for KFusionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "csr={} vr={} vs={:.1} mu={:.3} icp={:.0e} pyr={:?} tr={} ir={} rr={} bf={} thr={} vb={}",
            self.compute_size_ratio,
            self.volume_resolution,
            self.volume_size,
            self.mu,
            self.icp_threshold,
            self.pyramid_iterations,
            self.tracking_rate,
            self.integration_rate,
            self.raycast_rate,
            self.bilateral_filter,
            self.threads,
            self.volume_backend,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_slambench_default() {
        let c = KFusionConfig::default();
        assert_eq!(c.compute_size_ratio, 1);
        assert_eq!(c.volume_resolution, 256);
        assert_eq!(c.pyramid_iterations, [10, 5, 4]);
        assert!((c.mu - 0.1).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn fast_test_is_valid() {
        KFusionConfig::fast_test().validate().unwrap();
    }

    #[test]
    fn compute_resolution_divides() {
        let c = KFusionConfig {
            compute_size_ratio: 4,
            ..KFusionConfig::default()
        };
        assert_eq!(c.compute_resolution(640, 480), (160, 120));
    }

    #[test]
    fn voxel_size() {
        let c = KFusionConfig {
            volume_size: 4.0,
            volume_resolution: 128,
            ..KFusionConfig::default()
        };
        assert!((c.voxel_size() - 0.03125).abs() < 1e-7);
    }

    #[test]
    fn validate_rejects_bad_csr() {
        let c = KFusionConfig {
            compute_size_ratio: 3,
            ..KFusionConfig::default()
        };
        let e = c.validate().unwrap_err();
        assert_eq!(e.parameter(), "compute_size_ratio");
        assert!(e.to_string().contains("compute_size_ratio"));
    }

    #[test]
    fn validate_rejects_bad_mu() {
        let mut c = KFusionConfig {
            mu: 0.0,
            ..KFusionConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().parameter(), "mu");
        c.mu = f32::NAN;
        assert_eq!(c.validate().unwrap_err().parameter(), "mu");
    }

    #[test]
    fn validate_rejects_zero_iterations() {
        let c = KFusionConfig {
            pyramid_iterations: [0, 0, 0],
            ..KFusionConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().parameter(), "pyramid_iterations");
    }

    #[test]
    fn validate_rejects_zero_rates() {
        let mut c = KFusionConfig {
            integration_rate: 0,
            ..KFusionConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().parameter(), "integration_rate");
        c.integration_rate = 1;
        c.tracking_rate = 31;
        assert_eq!(c.validate().unwrap_err().parameter(), "tracking_rate");
    }

    #[test]
    fn validate_rejects_extreme_volume() {
        let mut c = KFusionConfig {
            volume_resolution: 8,
            ..KFusionConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().parameter(), "volume_resolution");
        c.volume_resolution = 2048;
        assert_eq!(c.validate().unwrap_err().parameter(), "volume_resolution");
    }

    #[test]
    fn total_iterations_sums_pyramid() {
        assert_eq!(KFusionConfig::default().total_icp_iterations(), 19);
    }

    #[test]
    fn threads_knob_validates_and_defaults_to_auto() {
        let c = KFusionConfig::default();
        assert_eq!(c.threads, 0, "0 = use all available threads");
        let mut c = KFusionConfig {
            threads: 4,
            ..KFusionConfig::default()
        };
        c.validate().unwrap();
        c.threads = 2000;
        assert_eq!(c.validate().unwrap_err().parameter(), "threads");
    }

    #[test]
    fn threads_field_is_serde_defaulted() {
        // configs serialised before the knob existed must still load
        let json = serde_json::to_string(&KFusionConfig::fast_test()).unwrap();
        let stripped = json.replace(",\"threads\":0", "");
        assert!(!stripped.contains("threads"));
        let back: KFusionConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.threads, 0);
    }

    #[test]
    fn volume_backend_is_serde_defaulted_and_displayed() {
        // configs serialised before the knob existed must still load
        let json = serde_json::to_string(&KFusionConfig::fast_test()).unwrap();
        let stripped = json.replace(",\"volume_backend\":\"Dense\"", "");
        assert!(!stripped.contains("volume_backend"));
        let back: KFusionConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.volume_backend, VolumeBackend::Dense);
        let sparse = KFusionConfig {
            volume_backend: VolumeBackend::Sparse,
            ..KFusionConfig::fast_test()
        };
        sparse.validate().unwrap();
        assert!(format!("{sparse}").contains("vb=sparse"));
    }

    #[test]
    fn serde_roundtrip() {
        let c = KFusionConfig::fast_test();
        let json = serde_json::to_string(&c).unwrap();
        let back: KFusionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn display_mentions_key_params() {
        let s = format!("{}", KFusionConfig::default());
        assert!(s.contains("vr=256"));
        assert!(s.contains("csr=1"));
    }
}
