//! Depth preprocessing kernels: unit conversion, bilateral filtering,
//! pyramid construction, vertex and normal maps.
//!
//! Every kernel returns its result together with the [`Workload`] it
//! performed, mirroring the per-kernel instrumentation of SLAMBench.

use crate::exec;
use crate::image::{DepthImage, Image2D, NormalMap, VertexMap};
use crate::workload::Workload;
use slam_math::camera::PinholeCamera;
use slam_math::Vec3;
use slam_trace::Tracer;

/// Converts a millimetre depth buffer to metres while down-sampling by
/// `ratio` (the `compute_size_ratio` parameter): output pixel `(x, y)`
/// takes input pixel `(x·ratio, y·ratio)`.
///
/// # Panics
///
/// Panics when `depth_mm.len() != width * height` or `ratio == 0`.
pub fn mm2meters(
    depth_mm: &[u16],
    width: usize,
    height: usize,
    ratio: usize,
) -> (DepthImage, Workload) {
    assert!(ratio > 0, "ratio must be positive");
    assert_eq!(depth_mm.len(), width * height, "depth buffer size mismatch");
    let (ow, oh) = (width / ratio, height / ratio);
    let mut out = Image2D::new(ow, oh, 0.0f32);
    for y in 0..oh {
        for x in 0..ow {
            let mm = depth_mm[(y * ratio) * width + x * ratio];
            out.set(x, y, f32::from(mm) / 1000.0);
        }
    }
    let n = (ow * oh) as f64;
    // one multiply per pixel; read u16, write f32
    (out, Workload::new(n, n * 6.0))
}

/// Bilateral filter: edge-preserving smoothing of the depth image.
/// Uses all available threads (see [`bilateral_filter_with_threads`]).
///
/// `radius` is the half window (SLAMBench uses 2), `sigma_space` the
/// spatial Gaussian in pixels, `sigma_range` the range Gaussian in metres.
/// Holes (`0`) neither contribute nor get filled.
pub fn bilateral_filter(
    depth: &DepthImage,
    radius: usize,
    sigma_space: f32,
    sigma_range: f32,
) -> (DepthImage, Workload) {
    bilateral_filter_with_threads(depth, radius, sigma_space, sigma_range, 0)
}

/// Like [`bilateral_filter`] with an explicit thread count (`0` = all
/// available). Runs on the shared [`exec`] worker pool over fixed row
/// bands; every output pixel is written exactly once and the band
/// layout depends only on the image height, so the output is
/// bit-identical for every thread count.
pub fn bilateral_filter_with_threads(
    depth: &DepthImage,
    radius: usize,
    sigma_space: f32,
    sigma_range: f32,
    threads: usize,
) -> (DepthImage, Workload) {
    bilateral_filter_traced(
        depth,
        radius,
        sigma_space,
        sigma_range,
        threads,
        Tracer::off(),
    )
}

/// Like [`bilateral_filter_with_threads`], recording a `bilateral`
/// kernel span plus per-band spans into `tracer`. Tracing never changes
/// the output (with [`Tracer::disabled`] this *is*
/// [`bilateral_filter_with_threads`]).
pub fn bilateral_filter_traced(
    depth: &DepthImage,
    radius: usize,
    sigma_space: f32,
    sigma_range: f32,
    threads: usize,
    tracer: &Tracer,
) -> (DepthImage, Workload) {
    let _kernel = tracer.kernel_span("bilateral");
    let (w, h) = (depth.width(), depth.height());
    let mut out = Image2D::new(w, h, 0.0f32);
    let r = radius as isize;
    // precompute the spatial weights
    let side = 2 * radius + 1;
    let mut spatial = vec![0.0f32; side * side];
    let inv_2ss = 1.0 / (2.0 * sigma_space * sigma_space);
    for dy in -r..=r {
        for dx in -r..=r {
            let d2 = (dx * dx + dy * dy) as f32;
            spatial[((dy + r) as usize) * side + (dx + r) as usize] = (-d2 * inv_2ss).exp();
        }
    }
    let inv_2sr = 1.0 / (2.0 * sigma_range * sigma_range);
    let threads = exec::effective_threads(threads);
    let spatial = &spatial;
    let src = depth.as_slice();
    let mut tasks: Vec<exec::Task<'_, f64>> = Vec::new();
    {
        let mut rest: &mut [f32] = out.as_mut_slice();
        for band in exec::band_ranges(h) {
            let (chunk, next) = rest.split_at_mut(band.len() * w);
            rest = next;
            tasks.push(Box::new(move || {
                let mut ops = 0.0f64;
                // SoA row accumulators: the offset loops stream whole rows
                // through `acc_sum`/`acc_w`, so the hot inner loop over `x`
                // is a contiguous gather-multiply-accumulate that the
                // compiler can vectorize. Per pixel the (dy, dx) terms are
                // still added in the same order as the scalar formulation,
                // so the output is bit-identical to it.
                let mut acc_sum = vec![0.0f32; w];
                let mut acc_w = vec![0.0f32; w];
                for (row, y) in band.enumerate() {
                    acc_sum.fill(0.0);
                    acc_w.fill(0.0);
                    let centre_row = &src[y * w..(y + 1) * w];
                    for dy in -r..=r {
                        let yy = y as isize + dy;
                        if yy < 0 || yy >= h as isize {
                            continue;
                        }
                        let nrow = &src[(yy as usize) * w..(yy as usize + 1) * w];
                        for dx in -r..=r {
                            let sw = spatial[((dy + r) as usize) * side + (dx + r) as usize];
                            let x0 = (-dx).max(0).min(w as isize) as usize;
                            let x1 = (w as isize - dx).clamp(0, w as isize) as usize;
                            for x in x0..x1 {
                                let d = nrow[(x as isize + dx) as usize];
                                // reject holes AND non-finite samples: a
                                // NaN or Inf pixel must not poison the
                                // accumulators of its neighbours
                                if !d.is_finite() || d <= 0.0 {
                                    continue;
                                }
                                let diff = d - centre_row[x];
                                let wgt = sw * (-diff * diff * inv_2sr).exp();
                                acc_sum[x] += wgt * d;
                                acc_w[x] += wgt;
                            }
                        }
                    }
                    for x in 0..w {
                        let centre = centre_row[x];
                        if !centre.is_finite() || centre <= 0.0 {
                            continue;
                        }
                        ops += (side * side) as f64 * 6.0;
                        if acc_w[x] > 0.0 {
                            chunk[row * w + x] = acc_sum[x] / acc_w[x];
                        }
                    }
                }
                ops
            }));
        }
    }
    // ordered sum over the fixed band layout: deterministic
    let ops: f64 = exec::sum_tasks_traced(tracer, "bilateral", threads, tasks);
    let n = (w * h) as f64;
    let window_reads = n * (side * side) as f64 * 4.0;
    (out, Workload::new(ops, window_reads + n * 4.0))
}

/// Depth-aware half-sampling for pyramid construction: averages the 2×2
/// block but only over pixels within `3·sigma_range` of the block's
/// top-left pixel, preserving depth edges.
pub fn half_sample(depth: &DepthImage, sigma_range: f32) -> (DepthImage, Workload) {
    let (w, h) = (depth.width() / 2, depth.height() / 2);
    let mut out = Image2D::new(w, h, 0.0f32);
    let band = 3.0 * sigma_range;
    for y in 0..h {
        for x in 0..w {
            let center = depth.get(x * 2, y * 2);
            if !center.is_finite() || center <= 0.0 {
                continue;
            }
            let mut sum = 0.0f32;
            let mut count = 0u32;
            for dy in 0..2 {
                for dx in 0..2 {
                    let d = depth.get(x * 2 + dx, y * 2 + dy);
                    if d.is_finite() && d > 0.0 && (d - center).abs() < band {
                        sum += d;
                        count += 1;
                    }
                }
            }
            if count > 0 {
                out.set(x, y, sum / count as f32);
            }
        }
    }
    let n = (w * h) as f64;
    (out, Workload::new(n * 8.0, n * 5.0 * 4.0))
}

/// Back-projects a depth image into a camera-frame vertex map. Invalid
/// depth yields the zero vertex.
///
/// # Panics
///
/// Panics when the camera resolution does not match the image.
pub fn depth2vertex(depth: &DepthImage, camera: &PinholeCamera) -> (VertexMap, Workload) {
    assert_eq!(
        (camera.width, camera.height),
        (depth.width(), depth.height()),
        "camera/image resolution mismatch"
    );
    let (w, h) = (depth.width(), depth.height());
    let mut out = Image2D::new(w, h, Vec3::ZERO);
    for y in 0..h {
        for x in 0..w {
            let d = depth.get(x, y);
            // `d > 0.0` alone would let +Inf through (NaN already fails
            // the comparison); reject both so vertices stay finite
            if d.is_finite() && d > 0.0 {
                out.set(
                    x,
                    y,
                    camera.unproject(slam_math::Vec2::new(x as f32, y as f32), d),
                );
            }
        }
    }
    let n = (w * h) as f64;
    (out, Workload::new(n * 6.0, n * 16.0))
}

/// Estimates per-pixel normals from a camera-frame vertex map via the
/// cross product of forward differences. Border pixels and pixels with
/// invalid neighbours get the zero normal.
pub fn vertex2normal(vertices: &VertexMap) -> (NormalMap, Workload) {
    let (w, h) = (vertices.width(), vertices.height());
    let mut out = Image2D::new(w, h, Vec3::ZERO);
    for y in 0..h {
        for x in 0..w {
            // `z <= 0.0` is false for NaN, so an explicit finite check is
            // needed to keep poisoned vertices out of the differences
            let invalid = |v: Vec3| !v.z.is_finite() || v.z <= 0.0;
            let center = vertices.get(x, y);
            if invalid(center) || x + 1 >= w || y + 1 >= h || x == 0 || y == 0 {
                continue;
            }
            let right = vertices.get(x + 1, y);
            let left = vertices.get(x - 1, y);
            let down = vertices.get(x, y + 1);
            let up = vertices.get(x, y - 1);
            if invalid(right) || invalid(left) || invalid(down) || invalid(up) {
                continue;
            }
            let dx = right - left;
            let dy = down - up;
            // cross(dy, dx) gives the normal facing the camera (-z) for a
            // fronto-parallel wall in the y-down camera convention
            out.set(x, y, dy.cross(dx).normalized_or_zero());
        }
    }
    let n = (w * h) as f64;
    (out, Workload::new(n * 15.0, n * 5.0 * 12.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_depth(w: usize, h: usize, z: f32) -> DepthImage {
        Image2D::new(w, h, z)
    }

    #[test]
    fn mm2meters_converts_and_downsamples() {
        let mm: Vec<u16> = vec![1500; 8 * 4];
        let (m, work) = mm2meters(&mm, 8, 4, 2);
        assert_eq!(m.width(), 4);
        assert_eq!(m.height(), 2);
        assert!((m.get(0, 0) - 1.5).abs() < 1e-6);
        assert!(work.ops > 0.0);
    }

    #[test]
    fn mm2meters_keeps_holes() {
        let mut mm = vec![1000u16; 4];
        mm[0] = 0;
        let (m, _) = mm2meters(&mm, 2, 2, 1);
        assert_eq!(m.get(0, 0), 0.0);
        assert!((m.get(1, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mm2meters_checks_size() {
        let _ = mm2meters(&[0u16; 3], 2, 2, 1);
    }

    #[test]
    fn bilateral_preserves_flat_regions() {
        let depth = flat_depth(16, 16, 2.0);
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        for (_, _, v) in f.enumerate_pixels() {
            assert!((v - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn bilateral_smooths_noise() {
        let mut depth = flat_depth(16, 16, 2.0);
        depth.set(8, 8, 2.01); // small perturbation within range sigma
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        let v = f.get(8, 8);
        assert!((v - 2.0).abs() < 0.009, "noise should shrink, got {v}");
    }

    #[test]
    fn bilateral_preserves_edges() {
        // step edge: left half at 1 m, right half at 3 m
        let mut depth = flat_depth(16, 16, 1.0);
        for y in 0..16 {
            for x in 8..16 {
                depth.set(x, y, 3.0);
            }
        }
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        assert!(
            (f.get(7, 8) - 1.0).abs() < 1e-3,
            "edge bled: {}",
            f.get(7, 8)
        );
        assert!(
            (f.get(8, 8) - 3.0).abs() < 1e-3,
            "edge bled: {}",
            f.get(8, 8)
        );
    }

    #[test]
    fn bilateral_skips_holes() {
        let mut depth = flat_depth(8, 8, 2.0);
        depth.set(4, 4, 0.0);
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        assert_eq!(f.get(4, 4), 0.0, "hole must stay a hole");
        assert!((f.get(3, 4) - 2.0).abs() < 1e-4, "neighbours unaffected");
    }

    #[test]
    fn bilateral_filter_is_thread_count_invariant() {
        // structured scene: slope + deterministic noise + a hole, with a
        // height that does not divide evenly into bands
        let mut depth = flat_depth(64, 47, 0.0);
        for y in 0..47 {
            for x in 0..64 {
                let noise = ((x * 31 + y * 17) % 7) as f32 * 0.002;
                depth.set(x, y, 1.0 + x as f32 * 0.01 + noise);
            }
        }
        depth.set(10, 10, 0.0);
        let (reference, ref_work) = bilateral_filter_with_threads(&depth, 2, 1.5, 0.1, 1);
        for threads in [2usize, 4, 7] {
            let (f, work) = bilateral_filter_with_threads(&depth, 2, 1.5, 0.1, threads);
            let bits = |img: &DepthImage| -> Vec<u32> {
                img.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&f), bits(&reference), "{threads} threads diverged");
            assert_eq!(work.ops.to_bits(), ref_work.ops.to_bits());
        }
    }

    #[test]
    fn non_finite_depth_does_not_poison_outputs() {
        let cam = PinholeCamera::tiny();
        let mut depth = flat_depth(cam.width, cam.height, 2.0);
        depth.set(8, 8, f32::NAN);
        depth.set(12, 8, f32::INFINITY);
        depth.set(8, 12, f32::NEG_INFINITY);
        let (f, _) = bilateral_filter(&depth, 2, 1.5, 0.1);
        for (x, y, v) in f.enumerate_pixels() {
            assert!(v.is_finite(), "bilateral emitted non-finite at ({x},{y})");
        }
        assert_eq!(f.get(8, 8), 0.0, "NaN centre must become a hole");
        assert!((f.get(9, 8) - 2.0).abs() < 1e-4, "neighbour unaffected");
        let (hs, _) = half_sample(&depth, 0.1);
        for (x, y, v) in hs.enumerate_pixels() {
            assert!(v.is_finite(), "half_sample emitted non-finite at ({x},{y})");
        }
        let (vm, _) = depth2vertex(&depth, &cam);
        for (x, y, v) in vm.enumerate_pixels() {
            assert!(
                v.x.is_finite() && v.y.is_finite() && v.z.is_finite(),
                "depth2vertex emitted non-finite at ({x},{y})"
            );
        }
        assert_eq!(vm.get(8, 8), Vec3::ZERO);
        assert_eq!(vm.get(12, 8), Vec3::ZERO, "Inf depth must become a hole");
        let mut poisoned = vm.clone();
        poisoned.set(6, 6, Vec3::new(0.0, 0.0, f32::NAN));
        let (nm, _) = vertex2normal(&poisoned);
        for (x, y, n) in nm.enumerate_pixels() {
            assert!(
                n.x.is_finite() && n.y.is_finite() && n.z.is_finite(),
                "vertex2normal emitted non-finite at ({x},{y})"
            );
        }
        assert_eq!(nm.get(7, 6), Vec3::ZERO, "neighbour of NaN vertex invalid");
    }

    #[test]
    fn half_sample_halves_resolution() {
        let depth = flat_depth(8, 6, 1.5);
        let (h, _) = half_sample(&depth, 0.1);
        assert_eq!(h.width(), 4);
        assert_eq!(h.height(), 3);
        assert!((h.get(1, 1) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn half_sample_respects_depth_band() {
        let mut depth = flat_depth(4, 4, 1.0);
        // one far outlier inside the 2x2 block at (0,0)
        depth.set(1, 1, 3.0);
        let (h, _) = half_sample(&depth, 0.1);
        assert!(
            (h.get(0, 0) - 1.0).abs() < 1e-6,
            "outlier averaged in: {}",
            h.get(0, 0)
        );
    }

    #[test]
    fn depth2vertex_back_projects() {
        let cam = PinholeCamera::tiny();
        let depth = flat_depth(cam.width, cam.height, 2.0);
        let (v, _) = depth2vertex(&depth, &cam);
        let centre = v.get(cam.width / 2, cam.height / 2);
        assert!((centre.z - 2.0).abs() < 1e-5);
        assert!(centre.x.abs() < 0.02);
        // off-centre pixel has lateral offset
        let corner = v.get(0, 0);
        assert!(corner.x < -0.5);
        assert!(
            (corner.z - 2.0).abs() < 1e-5,
            "z-depth is constant for a flat wall"
        );
    }

    #[test]
    fn depth2vertex_zeroes_holes() {
        let cam = PinholeCamera::tiny();
        let mut depth = flat_depth(cam.width, cam.height, 2.0);
        depth.set(5, 5, 0.0);
        let (v, _) = depth2vertex(&depth, &cam);
        assert_eq!(v.get(5, 5), Vec3::ZERO);
    }

    #[test]
    fn normals_of_flat_wall_face_camera() {
        let cam = PinholeCamera::tiny();
        let depth = flat_depth(cam.width, cam.height, 2.0);
        let (v, _) = depth2vertex(&depth, &cam);
        let (n, _) = vertex2normal(&v);
        let centre = n.get(cam.width / 2, cam.height / 2);
        assert!(
            (centre - Vec3::new(0.0, 0.0, -1.0)).norm() < 1e-3,
            "wall normal should face the camera, got {centre}"
        );
    }

    #[test]
    fn normals_are_unit_or_zero() {
        let cam = PinholeCamera::tiny();
        // a sloped surface: depth increases with x
        let mut depth = flat_depth(cam.width, cam.height, 0.0);
        for y in 0..cam.height {
            for x in 0..cam.width {
                depth.set(x, y, 1.0 + x as f32 * 0.01);
            }
        }
        let (v, _) = depth2vertex(&depth, &cam);
        let (n, _) = vertex2normal(&v);
        for (_, _, nv) in n.enumerate_pixels() {
            let len = nv.norm();
            assert!(len < 1e-6 || (len - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn normals_invalid_near_holes_and_borders() {
        let cam = PinholeCamera::tiny();
        let mut depth = flat_depth(cam.width, cam.height, 2.0);
        depth.set(10, 10, 0.0);
        let (v, _) = depth2vertex(&depth, &cam);
        let (n, _) = vertex2normal(&v);
        assert_eq!(n.get(10, 10), Vec3::ZERO);
        assert_eq!(n.get(11, 10), Vec3::ZERO, "neighbour of a hole is invalid");
        assert_eq!(n.get(0, 0), Vec3::ZERO, "border is invalid");
    }
}
