//! Backend-agnostic volume abstraction: the [`Volume`] trait both TSDF
//! backends satisfy, the [`VolumeStorage`] dispatch enum the pipeline
//! holds, and the versioned on-disk dump format (v3) that serialises
//! either backend while still loading legacy dense dumps.

use crate::image::DepthImage;
use crate::tsdf::TsdfVolume;
use crate::tsdf_sparse::{SparseTsdfVolume, BRICK_SIDE};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::Tracer;

/// Magic bytes of the versioned volume dump format.
pub const DUMP_MAGIC_V3: &[u8; 4] = b"TSV3";
/// Magic bytes of the legacy dense-only dump format.
pub const DUMP_MAGIC_LEGACY: &[u8; 4] = b"TSDF";

/// The operations every TSDF volume backend provides: geometry queries
/// for raycasting and meshing plus the fusion kernel itself.
///
/// Both implementations share the per-voxel fusion math (see
/// `tsdf::integrate_span`), so a voxel observed by both backends holds
/// bit-identical values; they differ only in which voxels are stored.
pub trait Volume {
    /// Voxels per side.
    fn resolution(&self) -> usize;

    /// Physical size of the cube side in metres.
    fn size(&self) -> f32;

    /// Side of one voxel in metres.
    fn voxel_size(&self) -> f32;

    /// Memory footprint of the voxel storage in bytes.
    fn memory_bytes(&self) -> usize;

    /// Number of voxels that have received at least one observation.
    fn occupied_voxels(&self) -> usize;

    /// Raw TSDF value of voxel `(x, y, z)`; `1.0` where unobserved.
    fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32;

    /// Integration weight of voxel `(x, y, z)`; `0.0` where unobserved.
    fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32;

    /// World-space centre of voxel `(x, y, z)`.
    fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        let v = self.voxel_size();
        Vec3::new(
            (x as f32 + 0.5) * v,
            (y as f32 + 0.5) * v,
            (z as f32 + 0.5) * v,
        )
    }

    /// Trilinearly-interpolated TSDF at a world point, or `None` when
    /// the point is outside the volume or entirely unobserved.
    fn sample(&self, p: Vec3) -> Option<f32>;

    /// TSDF gradient at a world point via central differences of
    /// trilinear samples; `None` near the border or unobserved space.
    fn gradient(&self, p: Vec3) -> Option<Vec3>;

    /// Hint for the ray marcher: a safe distance (in multiples of the
    /// unit direction `dir`) the ray can advance from `p` without
    /// crossing any stored surface. `0.0` means "no hint" — the dense
    /// backend has no empty-space structure to consult.
    fn free_space_skip(&self, p: Vec3, dir: Vec3) -> f32 {
        let _ = (p, dir);
        0.0
    }

    /// Fuses one depth frame into the volume; see
    /// [`TsdfVolume::integrate_traced`] for the parameter contract.
    /// Bit-identical across thread counts for every backend.
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    #[allow(clippy::too_many_arguments)]
    fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload;
}

impl Volume for TsdfVolume {
    fn resolution(&self) -> usize {
        TsdfVolume::resolution(self)
    }

    fn size(&self) -> f32 {
        TsdfVolume::size(self)
    }

    fn voxel_size(&self) -> f32 {
        TsdfVolume::voxel_size(self)
    }

    fn memory_bytes(&self) -> usize {
        TsdfVolume::memory_bytes(self)
    }

    fn occupied_voxels(&self) -> usize {
        TsdfVolume::occupied_voxels(self)
    }

    fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32 {
        TsdfVolume::voxel_tsdf(self, x, y, z)
    }

    fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32 {
        TsdfVolume::voxel_weight(self, x, y, z)
    }

    fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        TsdfVolume::voxel_center(self, x, y, z)
    }

    fn sample(&self, p: Vec3) -> Option<f32> {
        TsdfVolume::sample(self, p)
    }

    fn gradient(&self, p: Vec3) -> Option<Vec3> {
        TsdfVolume::gradient(self, p)
    }

    fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload {
        TsdfVolume::integrate_traced(self, depth, camera, pose, mu, max_weight, threads, tracer)
    }
}

/// Which TSDF storage backend a pipeline run uses — a design-space knob
/// (`KFusionConfig::volume_backend`).
// serialised by variant name ("Dense"/"Sparse"), like every other enum
// knob in the workspace; Display/FromStr use the lowercase CLI form
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VolumeBackend {
    /// One flat `resolution³` array pair — simple, but memory scales
    /// cubically whether or not space is observed.
    #[default]
    Dense,
    /// 8³ voxel bricks allocated on first touch inside the truncation
    /// band — memory scales with observed surface, not volume.
    Sparse,
}

impl std::fmt::Display for VolumeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VolumeBackend::Dense => "dense",
            VolumeBackend::Sparse => "sparse",
        })
    }
}

impl std::str::FromStr for VolumeBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(VolumeBackend::Dense),
            "sparse" => Ok(VolumeBackend::Sparse),
            other => Err(format!("unknown volume backend {other:?}")),
        }
    }
}

/// The volume a pipeline actually holds: one of the two backends, with
/// static dispatch per arm in the hot paths and a common serialised
/// form (the v3 dump) for both.
#[derive(Debug, Clone)]
pub enum VolumeStorage {
    /// Dense flat-array backend.
    Dense(TsdfVolume),
    /// Sparse brick-table backend.
    Sparse(SparseTsdfVolume),
}

impl VolumeStorage {
    /// Creates an empty volume of the requested backend.
    ///
    /// # Panics
    ///
    /// Panics when `resolution == 0` or `size <= 0`.
    pub fn new(backend: VolumeBackend, resolution: usize, size: f32) -> VolumeStorage {
        match backend {
            VolumeBackend::Dense => VolumeStorage::Dense(TsdfVolume::new(resolution, size)),
            VolumeBackend::Sparse => VolumeStorage::Sparse(SparseTsdfVolume::new(resolution, size)),
        }
    }

    /// Which backend this storage is.
    pub fn backend(&self) -> VolumeBackend {
        match self {
            VolumeStorage::Dense(_) => VolumeBackend::Dense,
            VolumeStorage::Sparse(_) => VolumeBackend::Sparse,
        }
    }

    /// The dense volume, when this storage is dense.
    pub fn as_dense(&self) -> Option<&TsdfVolume> {
        match self {
            VolumeStorage::Dense(v) => Some(v),
            VolumeStorage::Sparse(_) => None,
        }
    }

    /// The sparse volume, when this storage is sparse.
    pub fn as_sparse(&self) -> Option<&SparseTsdfVolume> {
        match self {
            VolumeStorage::Dense(_) => None,
            VolumeStorage::Sparse(v) => Some(v),
        }
    }

    /// Serialises the volume into the versioned dump format:
    /// `"TSV3", backend: u32, resolution: u32, size: f32, payload`.
    ///
    /// The dense payload is the raw `tsdf[]` then `weight[]` arrays;
    /// the sparse payload is `brick_side: u32, brick_count: u32` then
    /// the allocated bricks sorted by brick id (`id: u32, tsdf[512],
    /// weight[512]`), so the dump is canonical regardless of the
    /// allocation history.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(DUMP_MAGIC_V3);
        out.extend_from_slice(
            &match self {
                VolumeStorage::Dense(_) => 0u32,
                VolumeStorage::Sparse(_) => 1u32,
            }
            .to_le_bytes(),
        );
        out.extend_from_slice(&(self.resolution() as u32).to_le_bytes());
        out.extend_from_slice(&self.size().to_le_bytes());
        match self {
            VolumeStorage::Dense(v) => {
                out.reserve(v.tsdf_raw().len() * 8);
                for x in v.tsdf_raw() {
                    out.extend_from_slice(&x.to_le_bytes());
                }
                for w in v.weight_raw() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
            VolumeStorage::Sparse(v) => v.payload_to_bytes(&mut out),
        }
        out
    }

    /// Reconstructs a volume from [`VolumeStorage::to_bytes`] output or
    /// from a legacy dense dump ([`TsdfVolume::to_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    // `!(size > 0.0)` is deliberate: it also rejects NaN
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn from_bytes(bytes: &[u8]) -> Result<VolumeStorage, String> {
        if bytes.len() >= 4 && &bytes[..4] == DUMP_MAGIC_LEGACY {
            return TsdfVolume::from_bytes(bytes).map(VolumeStorage::Dense);
        }
        if bytes.len() < 16 || &bytes[..4] != DUMP_MAGIC_V3 {
            return Err("not a TSV3 volume dump".into());
        }
        let word = |at: usize| {
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
        };
        let backend = word(4);
        let resolution = word(8) as usize;
        let size = f32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        // same bounds as `KFusionConfig::validate` and the legacy parser
        if !(16..=1024).contains(&resolution) {
            return Err(format!("implausible resolution {resolution}"));
        }
        if !(size > 0.0) || size > 100.0 {
            return Err(format!("implausible size {size}"));
        }
        let payload = &bytes[16..];
        match backend {
            0 => {
                let n = resolution * resolution * resolution;
                if payload.len() != n * 8 {
                    return Err(format!(
                        "expected {} payload bytes, found {}",
                        n * 8,
                        payload.len()
                    ));
                }
                let read_f32s = |offset: usize| -> Vec<f32> {
                    (0..n)
                        .map(|i| {
                            let at = offset + i * 4;
                            f32::from_le_bytes([
                                payload[at],
                                payload[at + 1],
                                payload[at + 2],
                                payload[at + 3],
                            ])
                        })
                        .collect()
                };
                Ok(VolumeStorage::Dense(TsdfVolume::from_raw(
                    resolution,
                    size,
                    read_f32s(0),
                    read_f32s(n * 4),
                )))
            }
            1 => {
                SparseTsdfVolume::from_payload(resolution, size, payload).map(VolumeStorage::Sparse)
            }
            other => Err(format!("unknown volume backend tag {other}")),
        }
    }
}

impl Volume for VolumeStorage {
    fn resolution(&self) -> usize {
        match self {
            VolumeStorage::Dense(v) => v.resolution(),
            VolumeStorage::Sparse(v) => v.resolution(),
        }
    }

    fn size(&self) -> f32 {
        match self {
            VolumeStorage::Dense(v) => v.size(),
            VolumeStorage::Sparse(v) => v.size(),
        }
    }

    fn voxel_size(&self) -> f32 {
        match self {
            VolumeStorage::Dense(v) => v.voxel_size(),
            VolumeStorage::Sparse(v) => v.voxel_size(),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            VolumeStorage::Dense(v) => v.memory_bytes(),
            VolumeStorage::Sparse(v) => v.memory_bytes(),
        }
    }

    fn occupied_voxels(&self) -> usize {
        match self {
            VolumeStorage::Dense(v) => v.occupied_voxels(),
            VolumeStorage::Sparse(v) => v.occupied_voxels(),
        }
    }

    fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32 {
        match self {
            VolumeStorage::Dense(v) => v.voxel_tsdf(x, y, z),
            VolumeStorage::Sparse(v) => v.voxel_tsdf(x, y, z),
        }
    }

    fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32 {
        match self {
            VolumeStorage::Dense(v) => v.voxel_weight(x, y, z),
            VolumeStorage::Sparse(v) => v.voxel_weight(x, y, z),
        }
    }

    fn sample(&self, p: Vec3) -> Option<f32> {
        match self {
            VolumeStorage::Dense(v) => v.sample(p),
            VolumeStorage::Sparse(v) => v.sample(p),
        }
    }

    fn gradient(&self, p: Vec3) -> Option<Vec3> {
        match self {
            VolumeStorage::Dense(v) => v.gradient(p),
            VolumeStorage::Sparse(v) => v.gradient(p),
        }
    }

    fn free_space_skip(&self, p: Vec3, dir: Vec3) -> f32 {
        match self {
            VolumeStorage::Dense(_) => 0.0,
            VolumeStorage::Sparse(v) => Volume::free_space_skip(v, p, dir),
        }
    }

    fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload {
        match self {
            VolumeStorage::Dense(v) => {
                v.integrate_traced(depth, camera, pose, mu, max_weight, threads, tracer)
            }
            VolumeStorage::Sparse(v) => {
                v.integrate_traced(depth, camera, pose, mu, max_weight, threads, tracer)
            }
        }
    }
}

/// Asserts that the sparse payload header advertises the compiled brick
/// side; used by the parser and pinned by tests.
pub(crate) fn expect_brick_side(side: u32) -> Result<(), String> {
    if side as usize != BRICK_SIDE {
        return Err(format!(
            "unsupported brick side {side} (expected {BRICK_SIDE})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;

    fn integrated(backend: VolumeBackend) -> VolumeStorage {
        let cam = PinholeCamera::tiny();
        let mut vol = VolumeStorage::new(backend, 32, 2.0);
        let mut depth = Image2D::new(cam.width, cam.height, 1.0f32);
        for y in 0..cam.height {
            for x in 0..cam.width {
                depth.set(x, y, 0.9 + (x as f32 * 0.002) + (y as f32 * 0.001));
            }
        }
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        for _ in 0..2 {
            vol.integrate_traced(&depth, &cam, &pose, 0.2, 100.0, 0, Tracer::off());
        }
        vol
    }

    #[test]
    fn v3_roundtrip_dense() {
        let vol = integrated(VolumeBackend::Dense);
        let bytes = vol.to_bytes();
        assert_eq!(&bytes[..4], DUMP_MAGIC_V3);
        let back = VolumeStorage::from_bytes(&bytes).unwrap();
        assert_eq!(back.backend(), VolumeBackend::Dense);
        assert_eq!(back.to_bytes(), bytes, "roundtrip must be canonical");
        assert_eq!(back.occupied_voxels(), vol.occupied_voxels());
    }

    #[test]
    fn v3_roundtrip_sparse() {
        let vol = integrated(VolumeBackend::Sparse);
        assert!(vol.occupied_voxels() > 0, "test scene fused nothing");
        let bytes = vol.to_bytes();
        let back = VolumeStorage::from_bytes(&bytes).unwrap();
        assert_eq!(back.backend(), VolumeBackend::Sparse);
        assert_eq!(back.to_bytes(), bytes, "roundtrip must be canonical");
        assert_eq!(back.occupied_voxels(), vol.occupied_voxels());
        for z in (0..32).step_by(3) {
            for y in (0..32).step_by(3) {
                for x in (0..32).step_by(3) {
                    assert_eq!(back.voxel_tsdf(x, y, z), vol.voxel_tsdf(x, y, z));
                    assert_eq!(back.voxel_weight(x, y, z), vol.voxel_weight(x, y, z));
                }
            }
        }
    }

    #[test]
    fn legacy_dense_dumps_still_load() {
        let vol = integrated(VolumeBackend::Dense);
        let dense = vol.as_dense().unwrap();
        let legacy = dense.to_bytes();
        assert_eq!(&legacy[..4], DUMP_MAGIC_LEGACY);
        let back = VolumeStorage::from_bytes(&legacy).unwrap();
        assert_eq!(back.backend(), VolumeBackend::Dense);
        assert_eq!(back.occupied_voxels(), vol.occupied_voxels());
    }

    #[test]
    fn corruption_grid_rejects_malformed_dumps() {
        let vol = integrated(VolumeBackend::Sparse);
        let good = vol.to_bytes();
        assert!(VolumeStorage::from_bytes(&good).is_ok());
        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(VolumeStorage::from_bytes(&bad).is_err());
        // truncated header
        assert!(VolumeStorage::from_bytes(&good[..10]).is_err());
        // unknown backend tag
        let mut bad = good.clone();
        bad[4..8].copy_from_slice(&7u32.to_le_bytes());
        assert!(VolumeStorage::from_bytes(&bad).is_err());
        // implausible resolution (both edges)
        for res in [15u32, 1025] {
            let mut bad = good.clone();
            bad[8..12].copy_from_slice(&res.to_le_bytes());
            let err = VolumeStorage::from_bytes(&bad).unwrap_err();
            assert!(err.contains("implausible resolution"), "{err}");
        }
        // implausible size (NaN and oversized)
        for size in [f32::NAN, 101.0] {
            let mut bad = good.clone();
            bad[12..16].copy_from_slice(&size.to_le_bytes());
            let err = VolumeStorage::from_bytes(&bad).unwrap_err();
            assert!(err.contains("implausible size"), "{err}");
        }
        // unsupported brick side
        let mut bad = good.clone();
        bad[16..20].copy_from_slice(&16u32.to_le_bytes());
        let err = VolumeStorage::from_bytes(&bad).unwrap_err();
        assert!(err.contains("brick side"), "{err}");
        // mismatched brick count (header says one more than stored)
        let count = u32::from_le_bytes([good[20], good[21], good[22], good[23]]);
        let mut bad = good.clone();
        bad[20..24].copy_from_slice(&(count + 1).to_le_bytes());
        assert!(VolumeStorage::from_bytes(&bad).is_err());
        // truncated payload
        let mut bad = good.clone();
        bad.pop();
        assert!(VolumeStorage::from_bytes(&bad).is_err());
        // out-of-order brick ids break the canonical-form contract
        if count >= 2 {
            let mut bad = good.clone();
            let rec = 4 + BRICK_SIDE * BRICK_SIDE * BRICK_SIDE * 8;
            let (a, b) = (24, 24 + rec);
            let first: Vec<u8> = bad[a..a + rec].to_vec();
            let second: Vec<u8> = bad[b..b + rec].to_vec();
            bad[a..a + rec].copy_from_slice(&second);
            bad[b..b + rec].copy_from_slice(&first);
            let err = VolumeStorage::from_bytes(&bad).unwrap_err();
            assert!(err.contains("ascending"), "{err}");
        }
    }

    #[test]
    fn backend_knob_parses_and_displays() {
        assert_eq!(VolumeBackend::default(), VolumeBackend::Dense);
        assert_eq!(VolumeBackend::Dense.to_string(), "dense");
        assert_eq!(VolumeBackend::Sparse.to_string(), "sparse");
        assert_eq!("sparse".parse::<VolumeBackend>(), Ok(VolumeBackend::Sparse));
        assert!("voxelhash".parse::<VolumeBackend>().is_err());
        // wire format is the variant name, matching the AlgoId precedent
        let json = serde_json::to_string(&VolumeBackend::Sparse).unwrap();
        assert_eq!(json, "\"Sparse\"");
        let back: VolumeBackend = serde_json::from_str(&json).unwrap();
        assert_eq!(back, VolumeBackend::Sparse);
    }
}
