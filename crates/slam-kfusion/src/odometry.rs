//! Frame-to-frame ICP odometry with point-based fusion — the workspace's
//! second SLAM algorithm, behind [`crate::algo::SlamAlgorithm`].
//!
//! Where KinectFusion tracks each frame against a raycast prediction of
//! a dense TSDF model (frame-to-model), this pipeline aligns each frame
//! against the *previous frame's* measured maps and fuses the tracked
//! points into a sparse voxel-binned world point map (in the spirit of
//! point-based fusion, Keller et al. 3DV'13) — no TSDF volume, no
//! raycast. Per frame:
//!
//! ```text
//! mm2meters → bilateral filter → pyramid (half-sample)
//!           → depth2vertex / vertex2normal
//!           → ICP against the previous frame's maps
//!           → running-average point fusion into a voxel-binned map
//! ```
//!
//! The trade-off is exactly the one the algorithm-comparison literature
//! documents: much less work per frame (the TSDF integrate/raycast
//! kernels disappear) but open-loop drift — every small alignment error
//! is committed forever, so texture-poor or aliased scenes degrade the
//! trajectory far faster than they degrade frame-to-model tracking.
//!
//! Determinism: the parallel kernels reused here (bilateral filter, ICP)
//! are bit-identical across thread counts, and the fusion pass is a
//! serial loop over pixels in row-major order into a `BTreeMap` — so the
//! whole pipeline inherits the workspace's any-thread-count bit-identity
//! guarantee.

use crate::config::KFusionConfig;
use crate::icp::{track_traced, TrackResult};
use crate::pipeline::{build_pyramid_levels, lift_to_world, preprocess_depth, FrameResult};
use crate::raycast::RaycastResult;
use crate::workload::{FrameWorkload, Kernel, Workload};
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::{Clock, Tracer, WallClock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One fused surface element (surfel) of the world point map.
#[derive(Debug, Clone, Copy)]
pub struct MapPoint {
    /// Running-average world position.
    pub position: Vec3,
    /// Running-average (unnormalised) world normal.
    pub normal: Vec3,
    /// Accumulated confidence weight, capped at
    /// [`KFusionConfig::max_weight`].
    pub weight: f32,
}

/// Frame-to-frame ICP odometry with point-based fusion.
///
/// Interprets the shared [`KFusionConfig`] parameters it has analogues
/// for — `compute_size_ratio`, the ICP family, `pyramid_iterations`,
/// `tracking_rate`, `integration_rate` (fusion cadence),
/// `bilateral_filter`, `max_weight` — and reuses `volume_resolution` /
/// `volume_size` as the binning grid of its point map. The TSDF-specific
/// knobs (`mu`, `raycast_rate`, `tracking_reference`) are ignored: this
/// pipeline has no volume and always tracks frame-to-frame.
#[derive(Debug)]
pub struct PointOdometry {
    config: KFusionConfig,
    sensor_camera: PinholeCamera,
    compute_camera: PinholeCamera,
    pyramid_cameras: [PinholeCamera; 3],
    pose: Se3,
    /// Previous frame's measured maps in world coordinates — the
    /// tracking reference.
    prev_frame_maps: Option<RaycastResult>,
    /// The fused world model: voxel-binned surfels keyed by integer grid
    /// coordinates (`BTreeMap` for deterministic iteration).
    map: BTreeMap<(i32, i32, i32), MapPoint>,
    frame_index: usize,
    lost_frames: usize,
    /// Time source for [`FrameResult::wall_time`]; never influences
    /// outputs.
    clock: Arc<dyn Clock>,
}

impl PointOdometry {
    /// Creates an odometry pipeline for a sensor with the given
    /// intrinsics, starting at `initial_pose` (camera-to-world).
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`KFusionConfig::validate`].
    pub fn new(
        config: KFusionConfig,
        sensor_camera: PinholeCamera,
        initial_pose: Se3,
    ) -> PointOdometry {
        let validation = config.validate();
        assert!(
            validation.is_ok(),
            "invalid odometry configuration: {validation:?}"
        );
        let compute_camera = sensor_camera.scaled_down(config.compute_size_ratio);
        let pyramid_cameras = [
            compute_camera,
            compute_camera.scaled_down(2),
            compute_camera.scaled_down(4),
        ];
        PointOdometry {
            config,
            sensor_camera,
            compute_camera,
            pyramid_cameras,
            pose: initial_pose,
            prev_frame_maps: None,
            map: BTreeMap::new(),
            frame_index: 0,
            lost_frames: 0,
            clock: Arc::new(WallClock::new()),
        }
    }

    /// Replaces the time source behind [`FrameResult::wall_time`]
    /// (builder style); outputs are unaffected.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> PointOdometry {
        self.clock = clock;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &KFusionConfig {
        &self.config
    }

    /// The current pose estimate (camera-to-world).
    pub fn current_pose(&self) -> Se3 {
        self.pose
    }

    /// Number of frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.frame_index
    }

    /// Number of frames on which tracking failed.
    pub fn lost_frames(&self) -> usize {
        self.lost_frames
    }

    /// Number of fused surfels in the world point map.
    pub fn map_len(&self) -> usize {
        self.map.len()
    }

    /// The fused surfels, in deterministic (grid-key) order.
    pub fn map_points(&self) -> impl Iterator<Item = &MapPoint> {
        self.map.values()
    }

    /// Fuses the finest level's world-lifted maps into the point map:
    /// each valid measurement lands in its voxel bin as a confidence-
    /// weighted running average (the point-based-fusion update rule).
    /// Serial by construction — deterministic for any thread count.
    fn fuse_points(&mut self, world: &RaycastResult) -> Workload {
        let bin = self.config.voxel_size();
        let mut fused = 0usize;
        for y in 0..world.vertices.height() {
            for x in 0..world.vertices.width() {
                let p = world.vertices.get(x, y);
                let n = world.normals.get(x, y);
                if n == Vec3::ZERO {
                    continue;
                }
                // a non-finite point would hash to a garbage bin and then
                // poison that surfel's running average forever
                if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite())
                    || !(n.x.is_finite() && n.y.is_finite() && n.z.is_finite())
                {
                    continue;
                }
                let key = (
                    (p.x / bin).floor() as i32,
                    (p.y / bin).floor() as i32,
                    (p.z / bin).floor() as i32,
                );
                let e = self.map.entry(key).or_insert(MapPoint {
                    position: Vec3::ZERO,
                    normal: Vec3::ZERO,
                    weight: 0.0,
                });
                let w = e.weight;
                e.position = (e.position * w + p) * (1.0 / (w + 1.0));
                e.normal = (e.normal * w + n) * (1.0 / (w + 1.0));
                e.weight = (w + 1.0).min(self.config.max_weight);
                fused += 1;
            }
        }
        // ~20 flops per fused point (two running averages + the bin
        // computation); one point + one normal read and one surfel
        // read-modify-write of 28 bytes each
        Workload::new(20.0 * fused as f64, 80.0 * fused as f64)
    }

    /// Processes one depth frame and advances the pipeline state.
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor resolution.
    pub fn process_frame(&mut self, depth_mm: &[u16]) -> FrameResult {
        self.process_frame_traced(depth_mm, Tracer::off())
    }

    /// Like [`PointOdometry::process_frame`], recording the frame/kernel
    /// span hierarchy into `tracer`. Tracing never changes the outputs.
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor resolution.
    pub fn process_frame_traced(&mut self, depth_mm: &[u16], tracer: &Tracer) -> FrameResult {
        assert_eq!(
            depth_mm.len(),
            self.sensor_camera.pixel_count(),
            "depth buffer does not match sensor resolution"
        );
        let _frame = tracer.frame_span("frame");
        let start_ns = self.clock.now_ns();
        let mut fw = FrameWorkload::new();

        // --- preprocessing -------------------------------------------------
        let filtered =
            preprocess_depth(depth_mm, &self.sensor_camera, &self.config, &mut fw, tracer);
        let levels = build_pyramid_levels(&filtered, &self.pyramid_cameras, &mut fw, tracer);

        // --- tracking: always against the previous frame -------------------
        let is_first = self.frame_index == 0;
        let should_track = !is_first && self.frame_index.is_multiple_of(self.config.tracking_rate);
        let mut tracked = true;
        let mut track_result: Option<TrackResult> = None;
        if should_track {
            if let Some(prev) = self.prev_frame_maps.as_ref() {
                let (result, track_work, solve_work) = track_traced(
                    &levels,
                    prev,
                    &self.compute_camera,
                    &self.pose,
                    &self.config,
                    tracer,
                );
                fw.record(Kernel::Track, track_work);
                fw.record(Kernel::Solve, solve_work);
                tracked = result.tracked;
                if result.tracked {
                    self.pose = result.pose;
                } else {
                    self.lost_frames += 1;
                }
                track_result = Some(result);
            } else {
                tracked = false;
                self.lost_frames += 1;
            }
        }

        // the new tracking reference: this frame's maps at the (possibly
        // updated) pose; an untracked frame keeps the previous reference
        // so recovery re-aligns against the last good frame
        let world = lift_to_world(&levels[0], &self.pose);

        // --- point fusion --------------------------------------------------
        let should_fuse = (tracked || self.frame_index < 4)
            && self
                .frame_index
                .is_multiple_of(self.config.integration_rate);
        if should_fuse {
            let work = {
                let _k = tracer.kernel_span("fuse");
                self.fuse_points(&world)
            };
            fw.record(Kernel::Integrate, work);
        }
        if tracked {
            self.prev_frame_maps = Some(world);
        }

        let result = FrameResult {
            frame_index: self.frame_index,
            pose: self.pose,
            tracked,
            rms_residual: track_result.as_ref().map_or(0.0, |r| r.rms_residual),
            matched_fraction: track_result.as_ref().map_or(0.0, |r| r.matched_fraction),
            icp_iterations: track_result.as_ref().map_or(0, |r| r.iterations),
            integrated: should_fuse,
            raycasted: false,
            workload: fw,
            wall_time: self.clock.now_ns().saturating_sub(start_ns) as f64 / 1e9,
        };
        self.frame_index += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_depth(camera: &PinholeCamera, mm: u16) -> Vec<u16> {
        vec![mm; camera.pixel_count()]
    }

    fn structured_depth(camera: &PinholeCamera) -> Vec<u16> {
        let mut d = flat_depth(camera, 1500);
        for y in 20..60 {
            for x in 20..60 {
                d[y * camera.width + x] = 1200;
            }
        }
        for y in 70..100 {
            for x in 100..140 {
                d[y * camera.width + x] = 1350;
            }
        }
        d
    }

    fn center_pose() -> Se3 {
        Se3::from_translation(Vec3::new(2.0, 2.0, 0.2))
    }

    #[test]
    fn first_frame_bootstraps_map_and_reference() {
        let cam = PinholeCamera::tiny();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, center_pose());
        let r = odo.process_frame(&structured_depth(&cam));
        assert!(r.tracked);
        assert!(r.integrated);
        assert!(!r.raycasted, "odometry never raycasts");
        assert!(odo.map_len() > 0, "fusion should populate the point map");
        assert_eq!(odo.frames_processed(), 1);
    }

    #[test]
    fn static_camera_stays_put() {
        let cam = PinholeCamera::tiny();
        let init = center_pose();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, init);
        let depth = structured_depth(&cam);
        for _ in 0..5 {
            let r = odo.process_frame(&depth);
            assert!(r.tracked, "frame {} lost", r.frame_index);
        }
        let drift = odo.current_pose().translation_distance(&init);
        assert!(drift < 0.02, "static camera drifted {drift} m");
        assert_eq!(odo.lost_frames(), 0);
    }

    #[test]
    fn workload_has_no_tsdf_kernels() {
        let cam = PinholeCamera::tiny();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, center_pose());
        let depth = structured_depth(&cam);
        odo.process_frame(&depth);
        let r = odo.process_frame(&depth);
        assert!(r.workload.kernel(Kernel::Raycast).is_zero());
        assert!(
            !r.workload.kernel(Kernel::Integrate).is_zero(),
            "fusion work is reported under the integrate kernel"
        );
        assert!(!r.workload.kernel(Kernel::Track).is_zero());
    }

    #[test]
    fn fusion_weight_is_capped() {
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.max_weight = 3.0;
        let mut odo = PointOdometry::new(config, cam, center_pose());
        let depth = structured_depth(&cam);
        for _ in 0..6 {
            odo.process_frame(&depth);
        }
        assert!(odo.map_points().all(|p| p.weight <= 3.0));
        assert!(odo.map_points().any(|p| p.weight > 1.0));
    }

    #[test]
    fn all_holes_frame_is_lost_but_survives() {
        let cam = PinholeCamera::tiny();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, center_pose());
        odo.process_frame(&structured_depth(&cam));
        let r = odo.process_frame(&flat_depth(&cam, 0));
        assert!(!r.tracked);
        assert_eq!(odo.lost_frames(), 1);
        let r = odo.process_frame(&structured_depth(&cam));
        assert!(r.tracked);
    }

    #[test]
    #[should_panic(expected = "does not match sensor resolution")]
    fn wrong_buffer_size_panics() {
        let cam = PinholeCamera::tiny();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, Se3::IDENTITY);
        odo.process_frame(&[0u16; 10]);
    }

    #[test]
    #[should_panic(expected = "invalid odometry configuration")]
    fn invalid_config_panics() {
        let mut config = KFusionConfig::fast_test();
        config.compute_size_ratio = 3;
        let _ = PointOdometry::new(config, PinholeCamera::tiny(), Se3::IDENTITY);
    }

    #[test]
    fn wall_time_comes_from_the_injected_clock() {
        use slam_trace::MockClock;
        let cam = PinholeCamera::tiny();
        let mut odo = PointOdometry::new(KFusionConfig::fast_test(), cam, center_pose())
            .with_clock(Arc::new(MockClock::new(500_000)));
        let r = odo.process_frame(&structured_depth(&cam));
        assert_eq!(r.wall_time, 0.0005);
    }
}
