//! Sparse blocked TSDF volume: 8³-voxel bricks held in a deterministic
//! open-addressed brick table, allocated on first touch inside the
//! truncation band.
//!
//! # Determinism
//!
//! Fusion runs in three steps, each bit-identical across thread counts:
//!
//! 1. **Mark** — image rows are banded with [`exec::band_ranges`]; each
//!    band marks candidate bricks in its own bitset and the bitsets are
//!    OR-merged. OR is commutative and idempotent, so the merged set
//!    does not depend on the banding or thread count.
//! 2. **Allocate** — new bricks are inserted serially in ascending
//!    brick-id order, so the table layout is a pure function of the
//!    frame history.
//! 3. **Integrate** — *all* allocated bricks (not just this frame's
//!    marks) are banded over the slot arena with `split_at_mut`; every
//!    voxel is written exactly once by the shared
//!    [`integrate_span`](crate::tsdf) kernel, which evaluates the same
//!    closed-form per-voxel math as the dense backend. Keeping stale
//!    bricks in the pass means an allocated voxel receives exactly the
//!    update stream the dense backend gives it, so voxels with equal
//!    observation histories hold bit-identical values across backends.
//!
//! The mark pass is a conservative superset of the truncation band:
//! every voxel the dense backend would update with an in-band value
//! (`|sdf| <= mu`) lives in a marked brick, which the dense↔sparse
//! equivalence tests verify.

use crate::exec;
use crate::image::DepthImage;
use crate::tsdf::integrate_span;
use crate::volume::Volume;
use crate::workload::Workload;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::Tracer;

/// Voxels per brick side.
pub const BRICK_SIDE: usize = 8;
/// Voxels per brick.
pub const BRICK_VOXELS: usize = BRICK_SIDE * BRICK_SIDE * BRICK_SIDE;

/// Longest linear-probe walk and brick-DDA walk tolerated before giving
/// up; both are backstops, not expected paths.
const MAX_SKIP_BRICKS: usize = 64;

/// Pixels covered by one z-march of the mark pass. One march per
/// segment (instead of one per pixel) trades a wider, still
/// conservative marking margin for ~an order of magnitude fewer
/// mark-box calls.
const MARK_SEGMENT: usize = 16;

/// A sparse TSDF volume storing only bricks that have been touched by
/// the truncation band of some observation. Unallocated space reads as
/// unobserved (`tsdf = 1.0`, `weight = 0.0`), exactly like untouched
/// voxels of the dense backend.
///
/// # Examples
///
/// ```
/// use slam_kfusion::SparseTsdfVolume;
/// let vol = SparseTsdfVolume::new(512, 4.0);
/// assert_eq!(vol.resolution(), 512);
/// assert_eq!(vol.allocated_bricks(), 0);
/// // an empty 512³ volume costs kilobytes, not the dense gigabyte
/// assert!(vol.memory_bytes() < 1 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct SparseTsdfVolume {
    resolution: usize,
    size: f32,
    voxel: f32,
    bricks_per_side: usize,
    /// Open-addressed table of packed entries
    /// `((brick_id + 1) << 32) | slot`; `0` marks an empty cell. The
    /// capacity is a power of two and the load factor stays below ½.
    table: Vec<u64>,
    /// Slot → brick id, in allocation order.
    brick_ids: Vec<u32>,
    /// TSDF arena, [`BRICK_VOXELS`] entries per slot (z-major within
    /// the brick, x fastest — the same layout as the dense backend).
    tsdf: Vec<f32>,
    /// Weight arena, parallel to `tsdf`.
    weight: Vec<f32>,
    /// Slot → "holds surface information": set once any voxel of the
    /// brick drops below `tsdf = 1.0`. Bricks without the flag cannot
    /// contain a zero crossing, so the ray marcher may leap them like
    /// unallocated space. Sticky and derived per brick from its own
    /// voxels, so it is thread-count independent.
    surface: Vec<bool>,
    /// Brick-id-indexed bitset mirroring `surface` (bit set ⇔ brick
    /// allocated with its surface flag up). The free-space DDA tests
    /// this instead of probing the hash table per brick step; at 256³
    /// it is 4 KiB and stays cache-resident.
    surface_bits: Vec<u64>,
}

impl SparseTsdfVolume {
    /// Creates an empty volume with no bricks allocated.
    ///
    /// # Panics
    ///
    /// Panics when `resolution == 0` or `size <= 0`.
    pub fn new(resolution: usize, size: f32) -> SparseTsdfVolume {
        assert!(resolution > 0, "resolution must be positive");
        assert!(size > 0.0, "size must be positive");
        let bricks_per_side = resolution.div_ceil(BRICK_SIDE);
        SparseTsdfVolume {
            resolution,
            size,
            voxel: size / resolution as f32,
            bricks_per_side,
            table: vec![0; 256],
            brick_ids: Vec::new(),
            tsdf: Vec::new(),
            weight: Vec::new(),
            surface: Vec::new(),
            surface_bits: vec![0; (bricks_per_side.pow(3)).div_ceil(64)],
        }
    }

    /// Voxels per side.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Physical size of the cube side in metres.
    pub fn size(&self) -> f32 {
        self.size
    }

    /// Side of one voxel in metres.
    pub fn voxel_size(&self) -> f32 {
        self.voxel
    }

    /// Number of currently allocated bricks.
    pub fn allocated_bricks(&self) -> usize {
        self.brick_ids.len()
    }

    /// Memory footprint of the brick table plus voxel arenas in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.tsdf.len() + self.weight.len()) * std::mem::size_of::<f32>()
            + self.table.len() * std::mem::size_of::<u64>()
            + self.brick_ids.len() * std::mem::size_of::<u32>()
            + self.surface.len()
            + self.surface_bits.len() * std::mem::size_of::<u64>()
    }

    /// Number of voxels that have received at least one observation.
    pub fn occupied_voxels(&self) -> usize {
        self.weight.iter().filter(|&&w| w > 0.0).count()
    }

    #[inline]
    fn brick_id(&self, bx: usize, by: usize, bz: usize) -> u32 {
        ((bz * self.bricks_per_side + by) * self.bricks_per_side + bx) as u32
    }

    #[inline]
    fn hash(id: u32) -> usize {
        ((u64::from(id)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    /// Arena slot of `id`, if the brick is allocated.
    #[inline]
    fn slot_of(&self, id: u32) -> Option<usize> {
        let mask = self.table.len() - 1;
        let key = (u64::from(id) + 1) << 32;
        let mut i = Self::hash(id) & mask;
        loop {
            let entry = self.table[i];
            if entry == 0 {
                return None;
            }
            if entry & 0xFFFF_FFFF_0000_0000 == key {
                return Some((entry & 0xFFFF_FFFF) as usize);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts a brick that is known to be absent, growing the table
    /// when the load factor would exceed ½. Callers insert in ascending
    /// id order, which makes the table layout deterministic.
    fn insert_brick(&mut self, id: u32) {
        if (self.brick_ids.len() + 1) * 2 > self.table.len() {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut i = Self::hash(id) & mask;
        while self.table[i] != 0 {
            i = (i + 1) & mask;
        }
        let slot = self.brick_ids.len();
        self.table[i] = ((u64::from(id) + 1) << 32) | slot as u64;
        self.brick_ids.push(id);
        self.tsdf.resize(self.tsdf.len() + BRICK_VOXELS, 1.0);
        self.weight.resize(self.weight.len() + BRICK_VOXELS, 0.0);
        self.surface.push(false);
    }

    fn grow_table(&mut self) {
        let capacity = (self.table.len() * 2).max(256);
        let mut table = vec![0u64; capacity];
        let mask = capacity - 1;
        for (slot, &id) in self.brick_ids.iter().enumerate() {
            let mut i = Self::hash(id) & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = ((u64::from(id) + 1) << 32) | slot as u64;
        }
        self.table = table;
    }

    /// `(tsdf, weight)` of a voxel; the unobserved default where the
    /// containing brick is unallocated.
    #[inline]
    fn voxel_value(&self, x: usize, y: usize, z: usize) -> (f32, f32) {
        let id = self.brick_id(x / BRICK_SIDE, y / BRICK_SIDE, z / BRICK_SIDE);
        match self.slot_of(id) {
            None => (1.0, 0.0),
            Some(slot) => {
                let m = BRICK_SIDE - 1;
                let li = ((z & m) * BRICK_SIDE + (y & m)) * BRICK_SIDE + (x & m);
                let at = slot * BRICK_VOXELS + li;
                (self.tsdf[at], self.weight[at])
            }
        }
    }

    /// Raw TSDF value of voxel `(x, y, z)`; `1.0` where unallocated.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32 {
        assert!(
            x < self.resolution && y < self.resolution && z < self.resolution,
            "voxel out of range"
        );
        self.voxel_value(x, y, z).0
    }

    /// Integration weight of voxel `(x, y, z)`; `0.0` where unallocated.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32 {
        assert!(
            x < self.resolution && y < self.resolution && z < self.resolution,
            "voxel out of range"
        );
        self.voxel_value(x, y, z).1
    }

    /// World-space centre of voxel `(x, y, z)`.
    pub fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        Vec3::new(
            (x as f32 + 0.5) * self.voxel,
            (y as f32 + 0.5) * self.voxel,
            (z as f32 + 0.5) * self.voxel,
        )
    }

    /// Trilinearly-interpolated TSDF at a world point, or `None` when
    /// the point is outside the volume or *uninformative* — every
    /// interpolation corner still at the unobserved default `1.0`.
    /// Wherever a corner carries information the arithmetic matches the
    /// dense backend exactly; in uninformative space the dense backend
    /// may report `Some(1.0)` where this reports `None`, which lets the
    /// ray marcher fall through to [`SparseTsdfVolume::free_space_skip`]
    /// and leap whole bricks instead of striding. Reading only the TSDF
    /// arena (no weights) keeps the hot path at one brick-table lookup
    /// plus eight loads.
    pub fn sample(&self, p: Vec3) -> Option<f32> {
        let (c, tx, ty, tz) = self.cell(p)?;
        Some(slam_math::interp::trilerp(c, tx, ty, tz))
    }

    /// The interpolation cell around a world point: the eight corner
    /// TSDF values (x varies fastest) and the fractional coordinates.
    /// `None` when the point is outside the volume or the cell is
    /// uninformative (every corner at the `1.0` default — only fused
    /// observations move a voxel off it, so this is exactly "no
    /// information here").
    fn cell(&self, p: Vec3) -> Option<([f32; 8], f32, f32, f32)> {
        let g = p * (1.0 / self.voxel) - Vec3::splat(0.5);
        let x0 = g.x.floor();
        let y0 = g.y.floor();
        let z0 = g.z.floor();
        let max = (self.resolution - 1) as f32;
        if x0 < 0.0 || y0 < 0.0 || z0 < 0.0 || x0 >= max || y0 >= max || z0 >= max {
            return None;
        }
        let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
        let mut c = [0.0f32; 8];
        let m = BRICK_SIDE - 1;
        if (xi & m) < m && (yi & m) < m && (zi & m) < m {
            // fast path: all eight corners in one brick — one lookup
            let id = self.brick_id(xi / BRICK_SIDE, yi / BRICK_SIDE, zi / BRICK_SIDE);
            let slot = self.slot_of(id)?;
            let base =
                slot * BRICK_VOXELS + ((zi & m) * BRICK_SIDE + (yi & m)) * BRICK_SIDE + (xi & m);
            for (i, corner) in c.iter_mut().enumerate() {
                let at = base
                    + ((i >> 2) & 1) * BRICK_SIDE * BRICK_SIDE
                    + ((i >> 1) & 1) * BRICK_SIDE
                    + (i & 1);
                *corner = self.tsdf[at];
            }
        } else {
            // slow path: the cell straddles a brick face. The corners
            // touch at most 2 bricks per straddled axis, so cache the
            // (brick → slot) lookups per distinct brick — typically 2
            // table probes instead of 8.
            let bx = [xi / BRICK_SIDE, (xi + 1) / BRICK_SIDE];
            let by = [yi / BRICK_SIDE, (yi + 1) / BRICK_SIDE];
            let bz = [zi / BRICK_SIDE, (zi + 1) / BRICK_SIDE];
            let mut slots: [Option<Option<usize>>; 8] = [None; 8];
            for (i, corner) in c.iter_mut().enumerate() {
                let (cx, cy, cz) = (i & 1, (i >> 1) & 1, (i >> 2) & 1);
                // collapse the cache key along axes that do not straddle
                let key = usize::from(bx[0] != bx[1]) * cx
                    + usize::from(by[0] != by[1]) * cy * 2
                    + usize::from(bz[0] != bz[1]) * cz * 4;
                let slot = *slots[key]
                    .get_or_insert_with(|| self.slot_of(self.brick_id(bx[cx], by[cy], bz[cz])));
                *corner = match slot {
                    None => 1.0,
                    Some(slot) => {
                        let (x, y, z) = (xi + cx, yi + cy, zi + cz);
                        let li = ((z & m) * BRICK_SIDE + (y & m)) * BRICK_SIDE + (x & m);
                        self.tsdf[slot * BRICK_VOXELS + li]
                    }
                };
            }
        }
        if c.iter().all(|&t| t >= 1.0) {
            return None;
        }
        Some((c, g.x - x0, g.y - y0, g.z - z0))
    }

    /// TSDF gradient at a world point via central differences of
    /// trilinear samples one voxel apart, all six computed from one
    /// 4³-neighbourhood fetch
    /// ([`slam_math::interp::central_gradient`]); `None` near the
    /// volume border or in uninformative space. Same arithmetic as the
    /// dense backend — wherever both return a value over identical
    /// voxel content, the results are bit-identical.
    pub fn gradient(&self, p: Vec3) -> Option<Vec3> {
        let g = p * (1.0 / self.voxel) - Vec3::splat(0.5);
        let x0 = g.x.floor();
        let y0 = g.y.floor();
        let z0 = g.z.floor();
        let max = (self.resolution - 3) as f32;
        if x0 < 1.0 || y0 < 1.0 || z0 < 1.0 || x0 > max || y0 > max || z0 > max {
            return None;
        }
        let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
        // the 4³ window spans at most 2 bricks per axis, splitting each
        // axis into a prefix run (first brick) and a suffix run (second
        // brick); cache the (brick → slot) lookups per distinct brick
        // and copy whole x-runs out of the arena
        let bx = [(xi - 1) / BRICK_SIDE, (xi + 2) / BRICK_SIDE];
        let by = [(yi - 1) / BRICK_SIDE, (yi + 2) / BRICK_SIDE];
        let bz = [(zi - 1) / BRICK_SIDE, (zi + 2) / BRICK_SIDE];
        let prefix = |v: usize, b0: usize| ((b0 + 1) * BRICK_SIDE - (v - 1)).min(4);
        let (px, py, pz) = (prefix(xi, bx[0]), prefix(yi, by[0]), prefix(zi, bz[0]));
        let mut slots: [Option<Option<usize>>; 8] = [None; 8];
        let mut c = [1.0f32; 64];
        let m = BRICK_SIDE - 1;
        for dz in 0..4 {
            let z = zi - 1 + dz;
            let kz = usize::from(dz >= pz);
            let zb = (z & m) * BRICK_SIDE;
            for dy in 0..4 {
                let y = yi - 1 + dy;
                let ky = usize::from(dy >= py);
                let row = (dz * 4 + dy) * 4;
                for (kx, at, run) in [(0usize, 0usize, px), (1, px, 4 - px)] {
                    if run == 0 {
                        continue;
                    }
                    let slot = *slots[kz * 4 + ky * 2 + kx]
                        .get_or_insert_with(|| self.slot_of(self.brick_id(bx[kx], by[ky], bz[kz])));
                    if let Some(slot) = slot {
                        let x = xi - 1 + at;
                        let base = slot * BRICK_VOXELS + (zb + (y & m)) * BRICK_SIDE + (x & m);
                        c[row + at..row + at + run].copy_from_slice(&self.tsdf[base..base + run]);
                    }
                }
            }
        }
        if c.iter().all(|&t| t >= 1.0) {
            return None;
        }
        let (dx, dy, dz) = slam_math::interp::central_gradient(&c, g.x - x0, g.y - y0, g.z - z0);
        Some(Vec3::new(dx, dy, dz))
    }

    /// `true` when the brick holds no surface information — either
    /// unallocated, or allocated with every voxel still at the
    /// unobserved/free default `tsdf = 1.0`. Such bricks cannot contain
    /// a zero crossing, so the ray marcher may leap them. One bit test
    /// in the id-indexed `surface_bits` mirror, no hash probe.
    #[inline]
    fn brick_skippable(&self, bx: usize, by: usize, bz: usize) -> bool {
        let id = self.brick_id(bx, by, bz) as usize;
        self.surface_bits[id / 64] & (1u64 << (id % 64)) == 0
    }

    /// Mirrors the per-slot `surface` flags into the id-indexed bitset
    /// the free-space DDA reads. Serial and derived, so thread-count
    /// independent; sticky flags mean bits only ever turn on.
    fn refresh_surface_bits(&mut self) {
        for (slot, &up) in self.surface.iter().enumerate() {
            if up {
                let id = self.brick_ids[slot] as usize;
                self.surface_bits[id / 64] |= 1u64 << (id % 64);
            }
        }
    }

    /// Distance (along unit `dir`) a ray at `p` can safely advance
    /// while it walks surface-free bricks: unallocated bricks and
    /// allocated bricks whose voxels all sit at the `tsdf = 1.0`
    /// default hold no zero crossing, so the ray marcher can leap whole
    /// bricks instead of stepping. Returns `0.0` when `p` is outside
    /// the brick grid or already inside a surface-carrying brick.
    pub fn free_space_skip(&self, p: Vec3, dir: Vec3) -> f32 {
        let bw = self.voxel * BRICK_SIDE as f32;
        let bps = self.bricks_per_side as i64;
        let mut b = [
            (p.x / bw).floor() as i64,
            (p.y / bw).floor() as i64,
            (p.z / bw).floor() as i64,
        ];
        if b.iter().any(|&c| c < 0 || c >= bps) {
            return 0.0;
        }
        if !self.brick_skippable(b[0] as usize, b[1] as usize, b[2] as usize) {
            return 0.0;
        }
        // brick-grid DDA: advance brick by brick until a surface-
        // carrying brick or the grid edge, tracking the exit parameter
        let dirs = [dir.x, dir.y, dir.z];
        let origin = [p.x, p.y, p.z];
        let mut t_next = [f32::INFINITY; 3];
        let mut dt = [f32::INFINITY; 3];
        let mut step = [0i64; 3];
        for axis in 0..3 {
            if dirs[axis] > 1e-12 {
                step[axis] = 1;
                t_next[axis] = ((b[axis] + 1) as f32 * bw - origin[axis]) / dirs[axis];
                dt[axis] = bw / dirs[axis];
            } else if dirs[axis] < -1e-12 {
                step[axis] = -1;
                t_next[axis] = (b[axis] as f32 * bw - origin[axis]) / dirs[axis];
                dt[axis] = -bw / dirs[axis];
            }
        }
        let mut skip = 0.0f32;
        for _ in 0..MAX_SKIP_BRICKS {
            let axis = if t_next[0] <= t_next[1] && t_next[0] <= t_next[2] {
                0
            } else if t_next[1] <= t_next[2] {
                1
            } else {
                2
            };
            skip = t_next[axis];
            b[axis] += step[axis];
            if b[axis] < 0 || b[axis] >= bps {
                break;
            }
            if !self.brick_skippable(b[0] as usize, b[1] as usize, b[2] as usize) {
                break;
            }
            t_next[axis] += dt[axis];
        }
        // back off half a voxel so sampling resumes just before the
        // region boundary rather than exactly on it
        (skip - 0.5 * self.voxel).max(0.0)
    }

    /// Fuses one depth frame into the volume, using all available
    /// threads. See [`SparseTsdfVolume::integrate_traced`].
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    pub fn integrate(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
    ) -> Workload {
        self.integrate_traced(depth, camera, pose, mu, max_weight, 0, Tracer::off())
    }

    /// Fuses one depth frame: marks bricks touched by the truncation
    /// band, allocates the new ones in ascending id order, then runs
    /// the shared fusion kernel over every allocated brick. The result
    /// is bit-identical for every thread count (see the module docs),
    /// and every voxel value matches what the dense backend computes
    /// for the same observation history.
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload {
        let _kernel = tracer.kernel_span("integrate");
        assert_eq!(
            (camera.width, camera.height),
            (depth.width(), depth.height()),
            "camera/image resolution mismatch"
        );
        let threads = exec::effective_threads(threads);
        let (mark, mark_ops) = self.mark_bands(depth, camera, pose, mu, threads, tracer);
        // allocation: serial, ascending brick id — deterministic
        for (word_index, word) in mark.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let id = (word_index * 64 + bit) as u32;
                if self.slot_of(id).is_none() {
                    self.insert_brick(id);
                }
            }
        }
        let (ops, updated) =
            self.integrate_bricks(depth, camera, pose, mu, max_weight, threads, tracer);
        self.refresh_surface_bits();
        let touched = (self.brick_ids.len() * BRICK_VOXELS) as f64;
        Workload::new(mark_ops + ops, touched * 2.0 + updated * 16.0)
    }

    /// The mark pass: every image band computes a brick bitset covering
    /// the truncation band of its pixels; the bitsets OR-merge into the
    /// frame's candidate set.
    ///
    /// Rows are scanned in fixed [`MARK_SEGMENT`]-pixel segments: one
    /// z-march along the segment's central ray covers the whole segment.
    /// At depth `z` the segment's pixel rays fan out from the central
    /// ray purely along the world-space direction of the camera x-axis,
    /// so the marking box grows by the beam half-width along that axis
    /// only, plus the usual isotropic per-pixel margin (half a pixel of
    /// beam, the z-step slack through the steepest slope, and a voxel of
    /// rounding headroom). The result is a conservative superset of the
    /// per-pixel truncation band — the dense↔sparse equivalence suite
    /// pins this — at ~an order of magnitude fewer mark-box calls.
    fn mark_bands(
        &self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> (Vec<u64>, f64) {
        let bps = self.bricks_per_side;
        let words = (bps * bps * bps).div_ceil(64);
        let brick_world = self.voxel * BRICK_SIDE as f32;
        let dz = 0.5 * brick_world;
        let voxel = self.voxel;
        let inv_f = (1.0 / camera.fx).max(1.0 / camera.fy);
        // world direction of the image x-axis: the segment beam fans
        // out along this axis (per-axis magnitudes for an AABB bound)
        let ex = pose.rotation() * Vec3::new(1.0, 0.0, 0.0);
        let ex_abs = Vec3::new(ex.x.abs(), ex.y.abs(), ex.z.abs());
        let src = depth.as_slice();
        exec::reduce_bands_traced(
            tracer,
            "integrate_mark",
            threads,
            camera.height,
            |rows| {
                let mut bits = vec![0u64; words];
                let mut ops = 0.0f64;
                for y in rows {
                    let row = &src[y * camera.width..(y + 1) * camera.width];
                    for (seg, px) in row.chunks(MARK_SEGMENT).enumerate() {
                        // depth range over the segment's valid pixels
                        let mut d_min = f32::INFINITY;
                        let mut d_max = 0.0f32;
                        for &d in px {
                            if d.is_finite() && d > 0.0 {
                                d_min = d_min.min(d);
                                d_max = d_max.max(d);
                            }
                        }
                        ops += px.len() as f64 * 2.0;
                        if d_max <= 0.0 {
                            continue;
                        }
                        let xa = seg * MARK_SEGMENT;
                        let xb = xa + px.len() - 1;
                        let xc = 0.5 * (xa + xb) as f32;
                        let half_px = 0.5 * (xb - xa) as f32;
                        // steepest ray slope over the segment's footprint
                        let slope_x = ((xa as f32 - camera.cx).abs())
                            .max((xb as f32 - camera.cx).abs())
                            / camera.fx;
                        let slope_y = ((y as f32 - camera.cy).abs() + 0.5) / camera.fy;
                        let slope = (slope_x + 0.5 / camera.fx).max(slope_y);
                        let ray_x = (xc - camera.cx) / camera.fx;
                        let ray_y = (y as f32 - camera.cy) / camera.fy;
                        let z_min = (d_min - mu).max(0.0012);
                        let z_max = d_max + mu;
                        let mut z = z_min;
                        while z < z_max + dz {
                            let pw = pose.transform_point(Vec3::new(ray_x * z, ray_y * z, z));
                            // isotropic margin: half a pixel of beam,
                            // the z-step slack projected through the
                            // steepest slope, a voxel of rounding
                            // headroom — plus the segment's beam
                            // half-width along the x-axis direction
                            let m = 0.5 * (z + dz) * inv_f + (slope + 1.0) * 0.6 * dz + voxel;
                            let beam = half_px * (z + dz) / camera.fx;
                            let hw = Vec3::new(
                                m + beam * ex_abs.x,
                                m + beam * ex_abs.y,
                                m + beam * ex_abs.z,
                            );
                            ops += 12.0;
                            self.mark_box(&mut bits, pw, hw, brick_world);
                            z += dz;
                        }
                    }
                }
                (bits, ops)
            },
            (vec![0u64; words], 0.0f64),
            |(mut acc, ops), (bits, o)| {
                for (a, b) in acc.iter_mut().zip(bits) {
                    *a |= b;
                }
                (acc, ops + o)
            },
        )
    }

    /// Sets the bits of every brick whose cell intersects the axis-
    /// aligned box `centre ± half_width` (per-axis half widths).
    #[inline]
    fn mark_box(&self, bits: &mut [u64], centre: Vec3, half_width: Vec3, brick_world: f32) {
        let bps = self.bricks_per_side as i64;
        let lo = |v: f32, h: f32| (((v - h) / brick_world).floor() as i64).max(0);
        let hi = |v: f32, h: f32| (((v + h) / brick_world).floor() as i64).min(bps - 1);
        let (x0, x1) = (lo(centre.x, half_width.x), hi(centre.x, half_width.x));
        let (y0, y1) = (lo(centre.y, half_width.y), hi(centre.y, half_width.y));
        let (z0, z1) = (lo(centre.z, half_width.z), hi(centre.z, half_width.z));
        for bz in z0..=z1 {
            for by in y0..=y1 {
                for bx in x0..=x1 {
                    let id = self.brick_id(bx as usize, by as usize, bz as usize) as usize;
                    bits[id / 64] |= 1u64 << (id % 64);
                }
            }
        }
    }

    /// The fusion pass over every allocated brick, banded over arena
    /// slots with `split_at_mut` — each voxel written exactly once.
    #[allow(clippy::too_many_arguments)]
    fn integrate_bricks(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> (f64, f64) {
        let world_to_cam = pose.inverse();
        let res = self.resolution;
        let bps = self.bricks_per_side;
        let voxel = self.voxel;
        let dx_cam = world_to_cam.rotation() * Vec3::new(voxel, 0.0, 0.0);
        let slots = self.brick_ids.len();
        let ids: &[u32] = &self.brick_ids;
        let mut tasks: Vec<exec::Task<'_, (f64, f64)>> = Vec::new();
        {
            let mut t_rest: &mut [f32] = &mut self.tsdf;
            let mut w_rest: &mut [f32] = &mut self.weight;
            let mut s_rest: &mut [bool] = &mut self.surface;
            for band in exec::band_ranges(slots) {
                let (t_chunk, t_next) = t_rest.split_at_mut(band.len() * BRICK_VOXELS);
                let (w_chunk, w_next) = w_rest.split_at_mut(band.len() * BRICK_VOXELS);
                let (s_chunk, s_next) = s_rest.split_at_mut(band.len());
                t_rest = t_next;
                w_rest = w_next;
                s_rest = s_next;
                let s0 = band.start;
                tasks.push(Box::new(move || {
                    let mut ops: f64 = 0.0;
                    let mut updated: f64 = 0.0;
                    for (si, (t_brick, w_brick)) in t_chunk
                        .chunks_mut(BRICK_VOXELS)
                        .zip(w_chunk.chunks_mut(BRICK_VOXELS))
                        .enumerate()
                    {
                        let id = ids[s0 + si] as usize;
                        let bx = id % bps;
                        let by = (id / bps) % bps;
                        let bz = id / (bps * bps);
                        let x0 = bx * BRICK_SIDE;
                        let count = BRICK_SIDE.min(res - x0);
                        for lz in 0..BRICK_SIDE {
                            let gz = bz * BRICK_SIDE + lz;
                            if gz >= res {
                                break;
                            }
                            for ly in 0..BRICK_SIDE {
                                let gy = by * BRICK_SIDE + ly;
                                if gy >= res {
                                    break;
                                }
                                // identical row geometry to the dense
                                // backend: base at global x = 0
                                let row_world = Vec3::new(
                                    0.5 * voxel,
                                    (gy as f32 + 0.5) * voxel,
                                    (gz as f32 + 0.5) * voxel,
                                );
                                let row_base = world_to_cam.transform_point(row_world);
                                let at = (lz * BRICK_SIDE + ly) * BRICK_SIDE;
                                let (o, u) = integrate_span(
                                    depth,
                                    camera,
                                    row_base,
                                    dx_cam,
                                    x0,
                                    &mut t_brick[at..at + count],
                                    &mut w_brick[at..at + count],
                                    mu,
                                    max_weight,
                                );
                                ops += o;
                                updated += u;
                            }
                        }
                        // sticky surface flag: a pure function of the
                        // brick's own voxels, so thread-count invariant
                        if !s_chunk[si] {
                            s_chunk[si] = t_brick.iter().any(|&t| t < 1.0);
                        }
                    }
                    (ops, updated)
                }));
            }
        }
        exec::reduce_tasks_traced(
            tracer,
            "integrate",
            threads,
            tasks,
            (0.0, 0.0),
            |(a, b), (o, u)| (a + o, b + u),
        )
    }

    /// Appends the sparse v3 payload (`brick_side, brick_count`, then
    /// bricks sorted by id) to `out`. Sorting makes the dump canonical:
    /// two volumes with identical voxel content serialise identically
    /// regardless of their allocation histories.
    pub(crate) fn payload_to_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(BRICK_SIDE as u32).to_le_bytes());
        out.extend_from_slice(&(self.brick_ids.len() as u32).to_le_bytes());
        let mut order: Vec<usize> = (0..self.brick_ids.len()).collect();
        order.sort_by_key(|&slot| self.brick_ids[slot]);
        out.reserve(order.len() * (4 + BRICK_VOXELS * 8));
        for slot in order {
            out.extend_from_slice(&self.brick_ids[slot].to_le_bytes());
            let base = slot * BRICK_VOXELS;
            for v in &self.tsdf[base..base + BRICK_VOXELS] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            for w in &self.weight[base..base + BRICK_VOXELS] {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }

    /// Parses the sparse v3 payload written by
    /// [`SparseTsdfVolume::payload_to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    pub(crate) fn from_payload(
        resolution: usize,
        size: f32,
        payload: &[u8],
    ) -> Result<SparseTsdfVolume, String> {
        if payload.len() < 8 {
            return Err("sparse payload header truncated".into());
        }
        let word = |at: usize| {
            u32::from_le_bytes([
                payload[at],
                payload[at + 1],
                payload[at + 2],
                payload[at + 3],
            ])
        };
        crate::volume::expect_brick_side(word(0))?;
        let count = word(4) as usize;
        let record = 4 + BRICK_VOXELS * 8;
        let expected = 8 + count * record;
        if payload.len() != expected {
            return Err(format!(
                "expected {expected} payload bytes for {count} bricks, found {}",
                payload.len()
            ));
        }
        let mut vol = SparseTsdfVolume::new(resolution, size);
        let bps = vol.bricks_per_side;
        let max_id = (bps * bps * bps) as u32;
        let mut prev: Option<u32> = None;
        for b in 0..count {
            let at = 8 + b * record;
            let id = word(at);
            if id >= max_id {
                return Err(format!("brick id {id} out of range (max {max_id})"));
            }
            if prev.is_some_and(|p| p >= id) {
                return Err(format!("brick ids must be strictly ascending (saw {id})"));
            }
            prev = Some(id);
            vol.insert_brick(id);
            let slot = vol.brick_ids.len() - 1;
            let base = slot * BRICK_VOXELS;
            for i in 0..BRICK_VOXELS {
                let o = at + 4 + i * 4;
                vol.tsdf[base + i] = f32::from_le_bytes([
                    payload[o],
                    payload[o + 1],
                    payload[o + 2],
                    payload[o + 3],
                ]);
                let o = o + BRICK_VOXELS * 4;
                vol.weight[base + i] = f32::from_le_bytes([
                    payload[o],
                    payload[o + 1],
                    payload[o + 2],
                    payload[o + 3],
                ]);
            }
            vol.surface[slot] = vol.tsdf[base..base + BRICK_VOXELS].iter().any(|&t| t < 1.0);
        }
        vol.refresh_surface_bits();
        Ok(vol)
    }
}

impl Volume for SparseTsdfVolume {
    fn resolution(&self) -> usize {
        SparseTsdfVolume::resolution(self)
    }

    fn size(&self) -> f32 {
        SparseTsdfVolume::size(self)
    }

    fn voxel_size(&self) -> f32 {
        SparseTsdfVolume::voxel_size(self)
    }

    fn memory_bytes(&self) -> usize {
        SparseTsdfVolume::memory_bytes(self)
    }

    fn occupied_voxels(&self) -> usize {
        SparseTsdfVolume::occupied_voxels(self)
    }

    fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32 {
        SparseTsdfVolume::voxel_tsdf(self, x, y, z)
    }

    fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32 {
        SparseTsdfVolume::voxel_weight(self, x, y, z)
    }

    fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        SparseTsdfVolume::voxel_center(self, x, y, z)
    }

    fn sample(&self, p: Vec3) -> Option<f32> {
        SparseTsdfVolume::sample(self, p)
    }

    fn gradient(&self, p: Vec3) -> Option<Vec3> {
        SparseTsdfVolume::gradient(self, p)
    }

    fn free_space_skip(&self, p: Vec3, dir: Vec3) -> f32 {
        SparseTsdfVolume::free_space_skip(self, p, dir)
    }

    fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload {
        SparseTsdfVolume::integrate_traced(
            self, depth, camera, pose, mu, max_weight, threads, tracer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;
    use crate::tsdf::TsdfVolume;

    /// A structured depth image whose values vary across the frame.
    fn structured_depth(cam: &PinholeCamera, base: f32) -> DepthImage {
        let mut depth = Image2D::new(cam.width, cam.height, base);
        for y in 0..cam.height {
            for x in 0..cam.width {
                depth.set(x, y, base + (x as f32 * 0.002) + (y as f32 * 0.001));
            }
        }
        depth
    }

    #[test]
    fn new_volume_is_empty_and_cheap() {
        let vol = SparseTsdfVolume::new(256, 4.0);
        assert_eq!(vol.allocated_bricks(), 0);
        assert_eq!(vol.occupied_voxels(), 0);
        assert_eq!(vol.voxel_tsdf(0, 0, 0), 1.0);
        assert_eq!(vol.voxel_weight(128, 128, 128), 0.0);
        // dense 256³ costs 128 MiB; empty sparse must stay tiny
        assert!(vol.memory_bytes() < 1 << 16, "{}", vol.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = SparseTsdfVolume::new(0, 1.0);
    }

    #[test]
    fn integration_allocates_only_near_surface() {
        let cam = PinholeCamera::tiny();
        let mut vol = SparseTsdfVolume::new(64, 2.0);
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        assert!(vol.allocated_bricks() > 0);
        let total_bricks = 8 * 8 * 8;
        assert!(
            vol.allocated_bricks() < total_bricks / 2,
            "allocated {} of {total_bricks} bricks — not sparse",
            vol.allocated_bricks()
        );
        assert!(vol.occupied_voxels() > 500);
    }

    #[test]
    fn matches_dense_backend_bit_for_bit_in_band() {
        // static scene, fixed pose: every voxel's observation history is
        // identical across backends, so every in-band voxel must match
        // exactly and sparse weights must equal dense weights wherever
        // the brick was allocated from frame one
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let res = 33; // does not divide evenly into bricks or bands
        let mut dense = TsdfVolume::new(res, 2.0);
        let mut sparse = SparseTsdfVolume::new(res, 2.0);
        for _ in 0..3 {
            dense.integrate(&depth, &cam, &pose, 0.2, 100.0);
            sparse.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        let mut in_band = 0usize;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let dt = dense.voxel_tsdf(x, y, z);
                    let dw = dense.voxel_weight(x, y, z);
                    let st = sparse.voxel_tsdf(x, y, z);
                    let sw = sparse.voxel_weight(x, y, z);
                    if dt < 1.0 {
                        // an in-band observation happened: the sparse
                        // backend must have caught it, with identical
                        // history and bit-identical values
                        assert_eq!(dt.to_bits(), st.to_bits(), "tsdf differs at ({x},{y},{z})");
                        assert_eq!(
                            dw.to_bits(),
                            sw.to_bits(),
                            "weight differs at ({x},{y},{z})"
                        );
                        in_band += 1;
                    }
                    if sw > 0.0 {
                        assert!(dw >= sw, "sparse over-counted at ({x},{y},{z})");
                        assert_eq!(dt.to_bits(), st.to_bits(), "tsdf differs at ({x},{y},{z})");
                    }
                }
            }
        }
        assert!(in_band > 1000, "only {in_band} in-band voxels — weak test");
    }

    #[test]
    fn matches_dense_under_camera_translation() {
        // camera translating parallel to the wall: band membership is
        // stable, so equivalence must survive a multi-frame trajectory
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let res = 48;
        let mut dense = TsdfVolume::new(res, 2.0);
        let mut sparse = SparseTsdfVolume::new(res, 2.0);
        for i in 0..4 {
            let pose = Se3::from_translation(Vec3::new(0.9 + 0.05 * i as f32, 1.0, 0.0));
            dense.integrate(&depth, &cam, &pose, 0.2, 100.0);
            sparse.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        let mut checked = 0usize;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let dt = dense.voxel_tsdf(x, y, z);
                    if dt < 1.0 {
                        assert_eq!(
                            dt.to_bits(),
                            sparse.voxel_tsdf(x, y, z).to_bits(),
                            "tsdf differs at ({x},{y},{z})"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 1000, "only {checked} in-band voxels");
    }

    #[test]
    fn sample_and_gradient_match_dense_near_surface() {
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut dense = TsdfVolume::new(64, 2.0);
        let mut sparse = SparseTsdfVolume::new(64, 2.0);
        for _ in 0..2 {
            dense.integrate(&depth, &cam, &pose, 0.2, 100.0);
            sparse.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        let mut matched = 0usize;
        for i in 0..200 {
            // probe points scattered around the wall at z ≈ 1
            let f = i as f32;
            let p = Vec3::new(
                0.6 + (f * 0.37).fract() * 0.8,
                0.6 + (f * 0.71).fract() * 0.8,
                0.95 + (f * 0.53).fract() * 0.1,
            );
            if let Some(sv) = sparse.sample(p) {
                let dv = dense
                    .sample(p)
                    .expect("dense must observe what sparse does");
                assert_eq!(sv.to_bits(), dv.to_bits(), "sample differs at {p}");
                if let Some(sg) = sparse.gradient(p) {
                    let dg = dense.gradient(p).expect("gradient parity");
                    assert_eq!(sg.x.to_bits(), dg.x.to_bits());
                    assert_eq!(sg.y.to_bits(), dg.y.to_bits());
                    assert_eq!(sg.z.to_bits(), dg.z.to_bits());
                }
                matched += 1;
            }
        }
        assert!(matched > 50, "only {matched} probes hit observed space");
    }

    #[test]
    fn integration_is_thread_count_invariant() {
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam, 0.9);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        // 33³: divides into neither bricks nor bands evenly
        let run = |threads: usize| {
            let mut vol = SparseTsdfVolume::new(33, 2.0);
            let w1 = vol.integrate_traced(&depth, &cam, &pose, 0.2, 100.0, threads, Tracer::off());
            let w2 = vol.integrate_traced(&depth, &cam, &pose, 0.2, 100.0, threads, Tracer::off());
            let mut out = Vec::new();
            vol.payload_to_bytes(&mut out);
            (out, w1.ops.to_bits(), w2.ops.to_bits())
        };
        let reference = run(1);
        assert!(!reference.0.is_empty());
        for threads in [2usize, 4, 7] {
            assert_eq!(run(threads), reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn non_finite_depth_is_rejected() {
        let cam = PinholeCamera::tiny();
        let mut depth = Image2D::new(cam.width, cam.height, 1.0f32);
        for y in 0..cam.height {
            for x in 0..cam.width {
                match (x + y) % 4 {
                    0 => depth.set(x, y, f32::NAN),
                    1 => depth.set(x, y, f32::INFINITY),
                    _ => {}
                }
            }
        }
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut vol = SparseTsdfVolume::new(32, 2.0);
        vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        assert!(
            vol.tsdf.iter().all(|v| v.is_finite()),
            "NaN escaped into tsdf"
        );
        assert!(
            vol.weight.iter().all(|w| w.is_finite()),
            "NaN escaped into weight"
        );
        assert!(vol.occupied_voxels() > 0, "finite pixels must still fuse");
    }

    #[test]
    fn free_space_skip_jumps_unallocated_bricks() {
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.5);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut vol = SparseTsdfVolume::new(64, 2.0);
        vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        // from the camera, looking down +z towards the wall at z = 1.5:
        // the first metre is unallocated and must be skippable
        let skip = vol.free_space_skip(Vec3::new(1.0, 1.0, 0.3), Vec3::new(0.0, 0.0, 1.0));
        assert!(
            skip > vol.voxel_size() * BRICK_SIDE as f32 * 0.5,
            "skip {skip}"
        );
        // but the skip must never jump past the first allocated brick:
        // walk the skip and verify the landing point is still in front
        // of the band (sample is either None or positive)
        let p = Vec3::new(1.0, 1.0, 0.3 + skip);
        if let Some(v) = vol.sample(p) {
            assert!(v > 0.0, "skipped into the surface: sample {v}");
        }
        // inside an allocated brick there is no skip
        assert_eq!(
            vol.free_space_skip(Vec3::new(1.0, 1.0, 1.45), Vec3::new(0.0, 0.0, 1.0)),
            0.0
        );
        // outside the grid there is no skip
        assert_eq!(
            vol.free_space_skip(Vec3::new(-0.5, 1.0, 0.5), Vec3::new(0.0, 0.0, 1.0)),
            0.0
        );
    }

    #[test]
    fn high_resolution_volume_is_feasible() {
        // the dense backend at 512³ costs 1 GiB of voxel storage; the
        // sparse backend fuses a frame at 512³ in test time and stays
        // within a small multiple of the observed surface
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut vol = SparseTsdfVolume::new(512, 2.0);
        vol.integrate(&depth, &cam, &pose, 0.1, 100.0);
        assert!(vol.allocated_bricks() > 0);
        assert!(vol.occupied_voxels() > 10_000);
        let dense_bytes = 512usize * 512 * 512 * 8;
        assert!(
            vol.memory_bytes() < dense_bytes / 4,
            "sparse 512³ used {} bytes",
            vol.memory_bytes()
        );
    }

    #[test]
    fn table_survives_growth() {
        let mut vol = SparseTsdfVolume::new(512, 4.0);
        // force several growth cycles with a deterministic id pattern
        let bps = vol.bricks_per_side;
        let max = (bps * bps * bps) as u32;
        let ids: Vec<u32> = (0..2000u32).map(|i| (i * 37) % max).collect();
        let mut inserted: Vec<u32> = Vec::new();
        for &id in &ids {
            if vol.slot_of(id).is_none() {
                vol.insert_brick(id);
                inserted.push(id);
            }
        }
        assert!(vol.table.len() >= inserted.len() * 2);
        for &id in &inserted {
            assert!(vol.slot_of(id).is_some(), "lost brick {id} after growth");
        }
        assert_eq!(vol.allocated_bricks(), inserted.len());
    }
}
