//! A from-scratch KinectFusion (Newcombe et al., ISMAR 2011) dense SLAM
//! pipeline with the algorithmic parameterisation of SLAMBench.
//!
//! The pipeline consumes a stream of depth images (millimetres, `0` =
//! hole) and produces a camera pose per frame plus a dense TSDF model of
//! the scene. Per frame it runs the classic kernel chain:
//!
//! ```text
//! mm2meters → bilateral filter → pyramid (half-sample)
//!           → depth2vertex / vertex2normal
//!           → ICP tracking against the raycast model
//!           → TSDF integration → raycast (model prediction)
//! ```
//!
//! The hot kernels (bilateral filter, ICP association, TSDF
//! integration, raycast, marching cubes) execute on a shared persistent
//! worker pool ([`exec`]) with deterministic partitioning: outputs are
//! bit-identical regardless of the `threads` knob in
//! [`config::KFusionConfig`].
//!
//! Every kernel is instrumented with a [`workload::Workload`] —
//! arithmetic-op and memory-byte counts — which the `slam-power` crate
//! turns into modelled execution time and energy on embedded devices.
//! This is what lets the workspace reproduce the paper's
//! performance/accuracy/power trade-off studies without the original
//! hardware.
//!
//! The algorithmic parameters exposed by [`config::KFusionConfig`]
//! (volume resolution, TSDF truncation `mu`, `compute_size_ratio`, ICP
//! threshold, pyramid iterations, tracking/integration rates) are exactly
//! the knobs the ISPASS'18 paper's design-space exploration sweeps.
//!
//! # Examples
//!
//! ```
//! use slam_kfusion::{KFusionConfig, KinectFusion};
//! use slam_math::camera::PinholeCamera;
//! use slam_math::Se3;
//!
//! let camera = PinholeCamera::tiny();
//! let config = KFusionConfig::fast_test();
//! let mut kf = KinectFusion::new(config, camera, Se3::IDENTITY);
//! // feed a synthetic flat-wall depth image (2 m everywhere)
//! let depth_mm = vec![2000u16; camera.pixel_count()];
//! let result = kf.process_frame(&depth_mm);
//! assert!(result.tracked);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

pub mod algo;
pub mod config;
pub mod exec;
pub mod icp;
pub mod image;
mod mc_tables;
pub mod mesh;
pub mod odometry;
pub mod pipeline;
pub mod preprocess;
pub mod raycast;
pub mod tsdf;
pub mod tsdf_sparse;
pub mod volume;
pub mod workload;

pub use algo::{AlgoId, ParamDescriptor, ParamDomain, SlamAlgorithm};
pub use config::{ConfigError, KFusionConfig};
pub use exec::{available_threads, effective_threads, with_thread_budget};
pub use image::Image2D;
pub use mesh::{marching_cubes, marching_cubes_traced, marching_cubes_with_threads, TriangleMesh};
pub use odometry::PointOdometry;
pub use pipeline::{FrameResult, KinectFusion};
pub use tsdf::TsdfVolume;
pub use tsdf_sparse::SparseTsdfVolume;
pub use volume::{Volume, VolumeBackend, VolumeStorage};
pub use workload::{FrameWorkload, Kernel, Workload};
