//! Point-to-plane ICP with projective data association — the KinectFusion
//! tracking kernel.
//!
//! Each iteration associates every valid pixel of the current frame's
//! vertex map with the model prediction (raycast maps) by projecting the
//! transformed point into the model camera, then solves the linearised
//! point-to-plane system for a 6-DoF pose update.

use crate::config::KFusionConfig;
use crate::exec;
use crate::image::{NormalMap, VertexMap};
use crate::raycast::RaycastResult;
use crate::workload::Workload;
use slam_math::camera::PinholeCamera;
use slam_math::se3::Twist;
use slam_math::solve::NormalEquations;
use slam_math::{Se3, Vec3};
use slam_trace::Tracer;

/// Outcome of tracking one frame.
#[derive(Debug, Clone, Copy)]
pub struct TrackResult {
    /// The estimated camera-to-world pose.
    pub pose: Se3,
    /// Whether tracking converged with enough inliers.
    pub tracked: bool,
    /// RMS point-to-plane residual of the final iteration (metres).
    pub rms_residual: f64,
    /// Fraction of pixels with a valid association in the final iteration
    /// at the finest level.
    pub matched_fraction: f64,
    /// ICP iterations actually executed (across all levels).
    pub iterations: usize,
}

/// One pyramid level's input data for tracking.
#[derive(Debug, Clone)]
pub struct TrackLevel {
    /// Camera-frame vertex map of the current frame at this level.
    pub vertices: VertexMap,
    /// Camera-frame normal map of the current frame at this level.
    pub normals: NormalMap,
    /// Intrinsics at this level.
    pub camera: PinholeCamera,
}

/// Accumulated result of a single ICP iteration.
struct IterationStats {
    update: Twist,
    rms: f64,
    matched: usize,
    total_valid: usize,
    solved: bool,
}

/// Runs one ICP iteration at one level. Returns the accumulated stats and
/// the workload of the association pass.
///
/// The association runs on the shared [`exec`] worker pool over fixed
/// row bands; each band accumulates a partial [`NormalEquations`] and the
/// partials are merged **in band order**, so the solved update is
/// bit-identical for every thread count (`config.threads`, `0` = all
/// available).
fn icp_iteration(
    level: &TrackLevel,
    model: &RaycastResult,
    model_camera: &PinholeCamera,
    pose: &Se3,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> (IterationStats, Workload) {
    let model_inv = model.pose.inverse();
    let normal_cos_min = config.icp_normal_threshold.cos();
    let threads = exec::effective_threads(config.threads);
    // merge the per-band partial systems in band order: the fixed band
    // layout makes the floating-point accumulation order canonical
    let (ne, matched, total_valid) = exec::reduce_bands_traced(
        tracer,
        "track",
        threads,
        level.camera.height,
        |rows| {
            let mut ne = NormalEquations::<6>::new();
            let mut matched = 0usize;
            let mut total_valid = 0usize;
            for y in rows {
                for x in 0..level.camera.width {
                    let v = level.vertices.get(x, y);
                    // `z <= 0.0` is false for NaN: require finite depth so a
                    // poisoned vertex cannot reach the normal equations
                    if !v.z.is_finite() || v.z <= 0.0 {
                        continue;
                    }
                    let n_cur = level.normals.get(x, y);
                    if !n_cur.norm_squared().is_finite() || n_cur.norm_squared() < 0.25 {
                        continue;
                    }
                    total_valid += 1;
                    // current point in world coordinates under the pose estimate
                    let p_world = pose.transform_point(v);
                    // project into the model camera
                    let p_model_cam = model_inv.transform_point(p_world);
                    let Some(px) = model_camera.project(p_model_cam) else {
                        continue;
                    };
                    if !model_camera.contains(px) {
                        continue;
                    }
                    // round to the nearest pixel — truncation would bias the
                    // association half a pixel towards the origin
                    let (ui, vi) = ((px.x + 0.5) as usize, (px.y + 0.5) as usize);
                    if ui >= model_camera.width || vi >= model_camera.height {
                        continue;
                    }
                    let v_ref = model.vertices.get(ui, vi);
                    let n_ref = model.normals.get(ui, vi);
                    if !n_ref.norm_squared().is_finite() || n_ref.norm_squared() < 0.25 {
                        continue;
                    }
                    let diff = v_ref - p_world;
                    // reject non-finite model vertices the same way: a
                    // `> threshold` comparison is false for NaN and would
                    // let a poisoned association through
                    if !diff.norm().is_finite() || diff.norm() > config.icp_dist_threshold {
                        continue;
                    }
                    let n_world_cur = pose.transform_vector(n_cur);
                    if n_world_cur.dot(n_ref) < normal_cos_min {
                        continue;
                    }
                    matched += 1;
                    let r = f64::from(n_ref.dot(diff));
                    let cross = p_world.cross(n_ref);
                    let j = [
                        f64::from(n_ref.x),
                        f64::from(n_ref.y),
                        f64::from(n_ref.z),
                        f64::from(cross.x),
                        f64::from(cross.y),
                        f64::from(cross.z),
                    ];
                    // Huber weighting: down-weight residuals beyond ~1 cm so depth
                    // discontinuities and TSDF skirts do not drag the solution
                    const HUBER_DELTA: f64 = 0.01;
                    let w = if r.abs() <= HUBER_DELTA {
                        1.0
                    } else {
                        HUBER_DELTA / r.abs()
                    };
                    ne.add_row(&j, r, w);
                }
            }
            (ne, matched, total_valid)
        },
        (NormalEquations::<6>::new(), 0usize, 0usize),
        |(mut ne, matched, total_valid), (band_ne, band_matched, band_valid)| {
            ne.merge(&band_ne);
            (ne, matched + band_matched, total_valid + band_valid)
        },
    );
    let pixels = level.camera.pixel_count() as f64;
    // association: transform + project + lookups + checks ≈ 40 ops/pixel;
    // matched pixels additionally accumulate a 6-dof row (~60 ops)
    let work = Workload::new(
        pixels * 40.0 + matched as f64 * 60.0,
        pixels * (24.0 + 24.0) + matched as f64 * 48.0,
    );
    let min_rows = 64.min((pixels as usize / 10).max(6));
    if matched < min_rows {
        return (
            IterationStats {
                update: Twist::default(),
                rms: ne.rms_residual(),
                matched,
                total_valid,
                solved: false,
            },
            work,
        );
    }
    let solved = {
        let _solve = tracer.kernel_span("solve");
        ne.solve()
    };
    match solved {
        Ok(x) => {
            let update = Twist::new(
                Vec3::new(x[0] as f32, x[1] as f32, x[2] as f32),
                Vec3::new(x[3] as f32, x[4] as f32, x[5] as f32),
            );
            (
                IterationStats {
                    update,
                    rms: ne.rms_residual(),
                    matched,
                    total_valid,
                    solved: true,
                },
                work,
            )
        }
        Err(_) => (
            IterationStats {
                update: Twist::default(),
                rms: ne.rms_residual(),
                matched,
                total_valid,
                solved: false,
            },
            work,
        ),
    }
}

/// Tracks the current frame against the model prediction.
///
/// `levels` must be ordered finest (level 0, full compute resolution)
/// first; iteration counts come from `config.pyramid_iterations`
/// (finest-first as well). `model_camera` is the intrinsics the model maps
/// were raycast with (level 0 resolution).
///
/// Returns the [`TrackResult`] plus the workloads of the association
/// (`Track`) and solver (`Solve`) kernels.
pub fn track(
    levels: &[TrackLevel],
    model: &RaycastResult,
    model_camera: &PinholeCamera,
    initial_pose: &Se3,
    config: &KFusionConfig,
) -> (TrackResult, Workload, Workload) {
    track_traced(
        levels,
        model,
        model_camera,
        initial_pose,
        config,
        Tracer::off(),
    )
}

/// Like [`track`], recording `track` / `solve` kernel spans, per-band
/// association spans, and an `icp.iterations` counter into `tracer`.
/// Tracing never changes the estimated pose.
pub fn track_traced(
    levels: &[TrackLevel],
    model: &RaycastResult,
    model_camera: &PinholeCamera,
    initial_pose: &Se3,
    config: &KFusionConfig,
    tracer: &Tracer,
) -> (TrackResult, Workload, Workload) {
    let _kernel = tracer.kernel_span("track");
    let mut pose = *initial_pose;
    let mut track_work = Workload::ZERO;
    let mut solve_work = Workload::ZERO;
    let mut iterations = 0usize;
    let mut last_rms = 0.0f64;
    let mut last_matched_fraction = 0.0f64;
    let mut any_solved = false;
    // coarse-to-fine: iterate levels from last (coarsest) to first
    for (li, level) in levels.iter().enumerate().rev() {
        let max_iter = config.pyramid_iterations.get(li).copied().unwrap_or(0);
        for _ in 0..max_iter {
            let (stats, work) = icp_iteration(level, model, model_camera, &pose, config, tracer);
            track_work += work;
            // 6x6 cholesky + substitutions ≈ 500 flops
            solve_work += Workload::new(500.0, 36.0 * 8.0 * 3.0);
            iterations += 1;
            if li == 0 {
                last_rms = stats.rms;
                last_matched_fraction = if stats.total_valid > 0 {
                    stats.matched as f64 / stats.total_valid as f64
                } else {
                    0.0
                };
            }
            if !stats.solved {
                break;
            }
            any_solved = true;
            pose = (Se3::exp(stats.update) * pose).orthonormalized();
            if stats.update.norm() < config.icp_threshold {
                break;
            }
        }
    }
    let tracked = any_solved
        && last_matched_fraction >= f64::from(config.min_track_fraction)
        && last_rms.is_finite()
        && last_rms < 0.05;
    tracer.counter("icp.iterations", iterations as u64);
    (
        TrackResult {
            pose,
            tracked,
            rms_residual: last_rms,
            matched_fraction: last_matched_fraction,
            iterations,
        },
        track_work,
        solve_work,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;
    use crate::preprocess::{depth2vertex, vertex2normal};
    use crate::raycast::{raycast, RaycastParams};
    use crate::tsdf::TsdfVolume;

    /// Builds a wall-and-bump scene: depth image of a wall at 1.5 m with a
    /// square bump at 1.2 m — enough structure to constrain all six DoF
    /// only partially (a plane constrains 3), so we add a second bump.
    fn structured_depth(cam: &PinholeCamera) -> Image2D<f32> {
        let mut depth = Image2D::new(cam.width, cam.height, 1.5f32);
        for y in 20..60 {
            for x in 20..60 {
                depth.set(x, y, 1.2);
            }
        }
        for y in 70..100 {
            for x in 100..140 {
                depth.set(x, y, 1.35);
            }
        }
        depth
    }

    /// Integrates the structured scene from a known pose and returns the
    /// volume plus the raycast model at that pose.
    fn model_setup(cam: &PinholeCamera, pose: &Se3) -> (TsdfVolume, RaycastResult) {
        let mut vol = TsdfVolume::new(128, 4.0);
        let depth = structured_depth(cam);
        for _ in 0..3 {
            vol.integrate(&depth, cam, pose, 0.1, 100.0);
        }
        let params = RaycastParams {
            near: 0.3,
            far: 4.0,
            step_fraction: 0.4,
            mu: 0.1,
        };
        let (model, _) = raycast(&vol, cam, pose, &params);
        (vol, model)
    }

    fn levels_from_depth(depth: &Image2D<f32>, cam: &PinholeCamera) -> Vec<TrackLevel> {
        // single level is enough for unit tests
        let (v, _) = depth2vertex(depth, cam);
        let (n, _) = vertex2normal(&v);
        vec![TrackLevel {
            vertices: v,
            normals: n,
            camera: *cam,
        }]
    }

    fn test_config() -> KFusionConfig {
        KFusionConfig {
            pyramid_iterations: [10, 0, 0],
            ..KFusionConfig::fast_test()
        }
    }

    #[test]
    fn tracking_identity_converges_immediately() {
        let cam = PinholeCamera::tiny();
        let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        let (result, tw, sw) = track(&levels, &model, &cam, &pose, &test_config());
        assert!(result.tracked);
        assert!(
            result.pose.translation_distance(&pose) < 0.01,
            "drifted {}",
            result.pose.translation_distance(&pose)
        );
        assert!(result.rms_residual < 0.01);
        assert!(tw.ops > 0.0);
        assert!(sw.ops > 0.0);
    }

    #[test]
    fn tracking_recovers_small_translation() {
        let cam = PinholeCamera::tiny();
        let true_pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &true_pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        // start the estimate 2 cm off; ICP must pull it back
        let bad = Se3::from_translation(Vec3::new(2.0, 2.0, 0.02));
        let (result, _, _) = track(&levels, &model, &cam, &bad, &test_config());
        assert!(result.tracked, "lost: matched {}", result.matched_fraction);
        let err = result.pose.translation_distance(&true_pose);
        assert!(err < 0.008, "residual error {err} m");
    }

    #[test]
    fn tracking_recovers_small_rotation() {
        let cam = PinholeCamera::tiny();
        let true_pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &true_pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        let bad = true_pose * Se3::from_axis_angle(Vec3::Y, 0.01, Vec3::ZERO);
        let (result, _, _) = track(&levels, &model, &cam, &bad, &test_config());
        assert!(result.tracked);
        let rot_err = result.pose.rotation_angle_to(&true_pose);
        assert!(rot_err < 0.005, "residual rotation {rot_err} rad");
    }

    #[test]
    fn tracking_fails_without_model() {
        let cam = PinholeCamera::tiny();
        let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let empty = TsdfVolume::new(32, 4.0);
        let params = RaycastParams::default();
        let (model, _) = raycast(&empty, &cam, &pose, &params);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        let (result, _, _) = track(&levels, &model, &cam, &pose, &test_config());
        assert!(!result.tracked);
    }

    #[test]
    fn tracking_recovers_combined_motion() {
        let cam = PinholeCamera::tiny();
        let true_pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &true_pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        // simultaneous small rotation + translation offset; the
        // rotation/translation coupling on mostly-frontal geometry makes
        // this a slow convergence valley, so allow plenty of iterations
        let bad = true_pose
            * Se3::from_axis_angle(
                Vec3::new(0.3, 1.0, 0.1),
                0.008,
                Vec3::new(0.01, -0.008, 0.012),
            );
        let mut config = test_config();
        config.pyramid_iterations = [40, 0, 0];
        config.icp_threshold = 1e-7;
        let (result, _, _) = track(&levels, &model, &cam, &bad, &config);
        assert!(result.tracked);
        // On mostly-frontal geometry the lateral translation is only
        // weakly observable (aperture problem), so assert on what
        // point-to-plane ICP actually optimises: the plane residual and
        // the rotation.
        assert!(
            result.rms_residual < 2e-3,
            "plane residual did not converge: {}",
            result.rms_residual
        );
        assert!(
            result.pose.rotation_angle_to(&true_pose) < 0.01,
            "rotation residual {}",
            result.pose.rotation_angle_to(&true_pose)
        );
        // the depth direction (fully observable) must be recovered
        let dz = (result.pose.translation().z - true_pose.translation().z).abs();
        assert!(dz < 0.004, "z residual {dz}");
    }

    #[test]
    fn tracking_is_thread_count_invariant() {
        let cam = PinholeCamera::tiny();
        let true_pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &true_pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        let bad = Se3::from_translation(Vec3::new(2.0, 2.0, 0.02));
        let run = |threads: usize| {
            let mut config = test_config();
            config.threads = threads;
            track(&levels, &model, &cam, &bad, &config).0
        };
        let reference = run(1);
        // a probe point captures the full rigid transform bit-exactly
        let probe = Vec3::new(0.3, -0.2, 1.7);
        let ref_probe = reference.pose.transform_point(probe);
        for threads in [2usize, 4, 7] {
            let result = run(threads);
            let p = result.pose.transform_point(probe);
            for (a, b) in [(p.x, ref_probe.x), (p.y, ref_probe.y), (p.z, ref_probe.z)] {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads diverged");
            }
            assert_eq!(
                result.rms_residual.to_bits(),
                reference.rms_residual.to_bits()
            );
            assert_eq!(result.iterations, reference.iterations);
            assert_eq!(
                result.matched_fraction.to_bits(),
                reference.matched_fraction.to_bits()
            );
        }
    }

    #[test]
    fn track_reports_iteration_counts() {
        let cam = PinholeCamera::tiny();
        let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        let mut config = test_config();
        config.pyramid_iterations = [3, 0, 0];
        config.icp_threshold = 1e-12; // never converge early
        let (result, _, _) = track(&levels, &model, &cam, &pose, &config);
        assert_eq!(result.iterations, 3);
    }

    #[test]
    fn icp_threshold_limits_iterations() {
        let cam = PinholeCamera::tiny();
        let pose = Se3::from_translation(Vec3::new(2.0, 2.0, 0.0));
        let (_vol, model) = model_setup(&cam, &pose);
        let depth = structured_depth(&cam);
        let levels = levels_from_depth(&depth, &cam);
        // already aligned + loose threshold ⇒ early exit
        let mut config = test_config();
        config.icp_threshold = 1e-2;
        let (result, _, _) = track(&levels, &model, &cam, &pose, &config);
        assert!(
            result.iterations <= 2,
            "took {} iterations",
            result.iterations
        );
    }
}
