//! The truncated signed distance function (TSDF) volume and its
//! integration kernel.

use crate::exec;
use crate::image::DepthImage;
use crate::workload::Workload;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::Tracer;

/// Fuses one contiguous x-span of voxels into `tsdf`/`weight` and
/// returns `(ops, updated)` for the workload model.
///
/// The span covers global voxel x-coordinates `x0 .. x0 + tsdf.len()`
/// of a single `(y, z)` row. `row_base` is the camera-frame position of
/// the voxel centre at global `x = 0` and `dx_cam` the camera-frame
/// step per voxel along world +x, so every voxel evaluates the closed
/// form `cam_p = row_base + dx_cam * x` — no loop-carried dependency,
/// which keeps the loop chunk-friendly for autovectorization and makes
/// the dense and sparse volume backends bit-identical per voxel.
///
/// Non-finite depth samples are rejected: a plain `d <= 0.0` guard is
/// false for NaN, which would poison the running average permanently.
#[allow(clippy::too_many_arguments)]
pub(crate) fn integrate_span(
    depth: &DepthImage,
    camera: &PinholeCamera,
    row_base: Vec3,
    dx_cam: Vec3,
    x0: usize,
    tsdf: &mut [f32],
    weight: &mut [f32],
    mu: f32,
    max_weight: f32,
) -> (f64, f64) {
    debug_assert_eq!(tsdf.len(), weight.len());
    let mut ops: f64 = 0.0;
    let mut updated: f64 = 0.0;
    for (i, (t, w)) in tsdf.iter_mut().zip(weight.iter_mut()).enumerate() {
        let cam_p = row_base + dx_cam * ((x0 + i) as f32);
        ops += 4.0;
        if cam_p.z <= 0.001 {
            continue;
        }
        let u = camera.fx * cam_p.x / cam_p.z + camera.cx;
        let v = camera.fy * cam_p.y / cam_p.z + camera.cy;
        ops += 6.0;
        if u < -0.5 || v < -0.5 {
            continue;
        }
        // nearest-pixel lookup (truncation would bias the fusion)
        let (ui, vi) = ((u + 0.5) as usize, (v + 0.5) as usize);
        if ui >= camera.width || vi >= camera.height {
            continue;
        }
        let d = depth.get(ui, vi);
        if !d.is_finite() || d <= 0.0 {
            continue;
        }
        // projective signed distance along the optical axis
        let sdf = d - cam_p.z;
        if sdf < -mu {
            continue; // occluded
        }
        let tsdf_obs = (sdf / mu).min(1.0);
        let w_old = *w;
        let w_new = (w_old + 1.0).min(max_weight);
        *t = (*t * w_old + tsdf_obs) / (w_old + 1.0);
        *w = w_new;
        ops += 8.0;
        updated += 1.0;
    }
    (ops, updated)
}

/// A dense voxel grid storing a truncated signed distance to the nearest
/// surface (normalised to `[-1, 1]`) and an integration weight per voxel.
///
/// The volume spans the axis-aligned cube `[0, size]³` in world
/// coordinates, matching the KinectFusion convention where the camera
/// starts inside the volume.
///
/// # Examples
///
/// ```
/// use slam_kfusion::TsdfVolume;
/// let vol = TsdfVolume::new(32, 2.0);
/// assert_eq!(vol.resolution(), 32);
/// assert!((vol.voxel_size() - 0.0625).abs() < 1e-7);
/// assert_eq!(vol.occupied_voxels(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct TsdfVolume {
    resolution: usize,
    size: f32,
    voxel: f32,
    tsdf: Vec<f32>,
    weight: Vec<f32>,
}

impl TsdfVolume {
    /// Creates an empty volume: all voxels at distance `1.0`, weight `0`.
    ///
    /// # Panics
    ///
    /// Panics when `resolution == 0` or `size <= 0`.
    pub fn new(resolution: usize, size: f32) -> TsdfVolume {
        assert!(resolution > 0, "resolution must be positive");
        assert!(size > 0.0, "size must be positive");
        let n = resolution * resolution * resolution;
        TsdfVolume {
            resolution,
            size,
            voxel: size / resolution as f32,
            tsdf: vec![1.0; n],
            weight: vec![0.0; n],
        }
    }

    /// Voxels per side.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Physical size of the cube side in metres.
    pub fn size(&self) -> f32 {
        self.size
    }

    /// Side of one voxel in metres.
    pub fn voxel_size(&self) -> f32 {
        self.voxel
    }

    /// Memory footprint of the voxel data in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.tsdf.len() + self.weight.len()) * std::mem::size_of::<f32>()
    }

    /// Number of voxels that have received at least one observation.
    pub fn occupied_voxels(&self) -> usize {
        self.weight.iter().filter(|&&w| w > 0.0).count()
    }

    #[inline]
    fn index(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.resolution + y) * self.resolution + x
    }

    /// Raw TSDF storage (z-major, x fastest) for the dump writer.
    pub(crate) fn tsdf_raw(&self) -> &[f32] {
        &self.tsdf
    }

    /// Raw weight storage (z-major, x fastest) for the dump writer.
    pub(crate) fn weight_raw(&self) -> &[f32] {
        &self.weight
    }

    /// Rebuilds a volume from raw storage (the dump reader).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths do not match `resolution³`.
    pub(crate) fn from_raw(resolution: usize, size: f32, tsdf: Vec<f32>, weight: Vec<f32>) -> Self {
        let n = resolution * resolution * resolution;
        assert_eq!(tsdf.len(), n, "tsdf storage length mismatch");
        assert_eq!(weight.len(), n, "weight storage length mismatch");
        TsdfVolume {
            resolution,
            size,
            voxel: size / resolution as f32,
            tsdf,
            weight,
        }
    }

    /// Raw TSDF value of voxel `(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn voxel_tsdf(&self, x: usize, y: usize, z: usize) -> f32 {
        assert!(
            x < self.resolution && y < self.resolution && z < self.resolution,
            "voxel out of range"
        );
        self.tsdf[self.index(x, y, z)]
    }

    /// Integration weight of voxel `(x, y, z)`.
    ///
    /// # Panics
    ///
    /// Panics when any coordinate is out of range.
    pub fn voxel_weight(&self, x: usize, y: usize, z: usize) -> f32 {
        assert!(
            x < self.resolution && y < self.resolution && z < self.resolution,
            "voxel out of range"
        );
        self.weight[self.index(x, y, z)]
    }

    /// World-space centre of voxel `(x, y, z)`.
    pub fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        Vec3::new(
            (x as f32 + 0.5) * self.voxel,
            (y as f32 + 0.5) * self.voxel,
            (z as f32 + 0.5) * self.voxel,
        )
    }

    /// Trilinearly-interpolated TSDF at a world point, or `None` when the
    /// point is outside the volume or entirely unobserved (all eight
    /// neighbouring voxels have zero weight).
    pub fn sample(&self, p: Vec3) -> Option<f32> {
        let (c, tx, ty, tz) = self.cell(p)?;
        Some(slam_math::interp::trilerp(c, tx, ty, tz))
    }

    /// The interpolation cell around a world point: the eight corner
    /// TSDF values (x varies fastest) and the fractional coordinates.
    /// `None` when the point is outside the volume or every corner is
    /// unobserved.
    fn cell(&self, p: Vec3) -> Option<([f32; 8], f32, f32, f32)> {
        let g = p * (1.0 / self.voxel) - Vec3::splat(0.5);
        let x0 = g.x.floor();
        let y0 = g.y.floor();
        let z0 = g.z.floor();
        let max = (self.resolution - 1) as f32;
        if x0 < 0.0 || y0 < 0.0 || z0 < 0.0 || x0 >= max || y0 >= max || z0 >= max {
            return None;
        }
        let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
        let mut c = [0.0f32; 8];
        let mut any_observed = false;
        for (i, corner) in c.iter_mut().enumerate() {
            let idx = self.index(xi + (i & 1), yi + ((i >> 1) & 1), zi + ((i >> 2) & 1));
            *corner = self.tsdf[idx];
            any_observed |= self.weight[idx] > 0.0;
        }
        if !any_observed {
            return None;
        }
        Some((c, g.x - x0, g.y - y0, g.z - z0))
    }

    /// TSDF gradient (points from inside to outside) at a world point
    /// via central differences of trilinear samples one voxel apart;
    /// `None` near the volume border or in unobserved space. All six
    /// shifted samples come from one 4³-neighbourhood fetch
    /// ([`slam_math::interp::central_gradient`]) instead of six
    /// independent bounds-checked samples.
    pub fn gradient(&self, p: Vec3) -> Option<Vec3> {
        let g = p * (1.0 / self.voxel) - Vec3::splat(0.5);
        let x0 = g.x.floor();
        let y0 = g.y.floor();
        let z0 = g.z.floor();
        // the 4³ block spans grid offsets -1..=2, and the shifted cells
        // interpolate inside it, so the base corner needs a one-voxel
        // border on each side
        let max = (self.resolution - 3) as f32;
        if x0 < 1.0 || y0 < 1.0 || z0 < 1.0 || x0 > max || y0 > max || z0 > max {
            return None;
        }
        let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
        let mut c = [0.0f32; 64];
        let mut any_observed = false;
        for dz in 0..4 {
            for dy in 0..4 {
                let row = self.index(xi - 1, yi - 1 + dy, zi - 1 + dz);
                for dx in 0..4 {
                    c[(dz * 4 + dy) * 4 + dx] = self.tsdf[row + dx];
                    any_observed |= self.weight[row + dx] > 0.0;
                }
            }
        }
        if !any_observed {
            return None;
        }
        let (dx, dy, dz) = slam_math::interp::central_gradient(&c, g.x - x0, g.y - y0, g.z - z0);
        Some(Vec3::new(dx, dy, dz))
    }

    /// Fuses one depth frame into the volume, using all available
    /// threads (see [`TsdfVolume::integrate_with_threads`]).
    ///
    /// `pose` is the camera-to-world pose of the frame, `mu` the
    /// truncation distance in metres, `max_weight` the running-average
    /// cap. Returns the measured [`Workload`].
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    pub fn integrate(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
    ) -> Workload {
        self.integrate_with_threads(depth, camera, pose, mu, max_weight, 0)
    }

    /// Like [`TsdfVolume::integrate`] with an explicit thread count
    /// (`0` = all available). Runs on the shared [`exec`] worker pool
    /// over fixed z-slabs; each voxel is written exactly once and the
    /// slab layout depends only on the resolution, so the result is
    /// bit-identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    pub fn integrate_with_threads(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
    ) -> Workload {
        self.integrate_traced(depth, camera, pose, mu, max_weight, threads, Tracer::off())
    }

    /// Like [`TsdfVolume::integrate_with_threads`], recording an
    /// `integrate` kernel span plus per-slab band spans into `tracer`.
    /// Tracing never changes the fused volume.
    ///
    /// # Panics
    ///
    /// Panics when the camera resolution does not match the depth image.
    #[allow(clippy::too_many_arguments)]
    pub fn integrate_traced(
        &mut self,
        depth: &DepthImage,
        camera: &PinholeCamera,
        pose: &Se3,
        mu: f32,
        max_weight: f32,
        threads: usize,
        tracer: &Tracer,
    ) -> Workload {
        let _kernel = tracer.kernel_span("integrate");
        assert_eq!(
            (camera.width, camera.height),
            (depth.width(), depth.height()),
            "camera/image resolution mismatch"
        );
        let world_to_cam = pose.inverse();
        let res = self.resolution;
        let voxel = self.voxel;
        // camera-frame step for one voxel along world +x (the innermost
        // loop direction: indices are z-major, x fastest)
        let r = world_to_cam.rotation();
        let dx_cam = r * Vec3::new(voxel, 0.0, 0.0);
        let threads = exec::effective_threads(threads);
        let slab = res * res; // voxels per z slice
        let depth_ref = depth;
        // split the storage into contiguous z-slab bands; each voxel is
        // written exactly once and the band layout is fixed by `res`, so
        // the result is independent of the thread count
        let mut tasks: Vec<exec::Task<'_, (f64, f64)>> = Vec::new();
        {
            let mut t_rest: &mut [f32] = &mut self.tsdf;
            let mut w_rest: &mut [f32] = &mut self.weight;
            for band in exec::band_ranges(res) {
                let (t_chunk, t_next) = t_rest.split_at_mut(band.len() * slab);
                let (w_chunk, w_next) = w_rest.split_at_mut(band.len() * slab);
                t_rest = t_next;
                w_rest = w_next;
                let z0 = band.start;
                let (tsdf_chunk, weight_chunk) = (t_chunk, w_chunk);
                tasks.push(Box::new(move || {
                    let mut ops: f64 = 0.0;
                    let mut updated: f64 = 0.0;
                    let zn = tsdf_chunk.len() / slab;
                    for zi in 0..zn {
                        let z = z0 + zi;
                        for y in 0..res {
                            // camera-frame position of the voxel centre
                            // at global x = 0 of this (y, z) row
                            let row_world = Vec3::new(
                                0.5 * voxel,
                                (y as f32 + 0.5) * voxel,
                                (z as f32 + 0.5) * voxel,
                            );
                            let row_base = world_to_cam.transform_point(row_world);
                            let at = zi * slab + y * res;
                            let (o, u) = integrate_span(
                                depth_ref,
                                camera,
                                row_base,
                                dx_cam,
                                0,
                                &mut tsdf_chunk[at..at + res],
                                &mut weight_chunk[at..at + res],
                                mu,
                                max_weight,
                            );
                            ops += o;
                            updated += u;
                        }
                    }
                    (ops, updated)
                }));
            }
        }
        // ordered fold over the fixed band layout: deterministic
        let (ops, updated) = exec::reduce_tasks_traced(
            tracer,
            "integrate",
            threads,
            tasks,
            (0.0, 0.0),
            |(a, b), (o, u)| (a + o, b + u),
        );
        let voxels = (res * res * res) as f64;
        Workload::new(ops, voxels * 2.0 + updated * 16.0)
    }

    /// Serialises the volume into a compact little-endian binary blob
    /// (`magic, resolution, size, tsdf[], weight[]`) — the dump format
    /// the CLI's volume export uses.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.tsdf.len() * 8);
        out.extend_from_slice(b"TSDF");
        out.extend_from_slice(&(self.resolution as u32).to_le_bytes());
        out.extend_from_slice(&self.size.to_le_bytes());
        for v in &self.tsdf {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for w in &self.weight {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstructs a volume from [`TsdfVolume::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem found.
    // `!(size > 0.0)` is deliberate: it also rejects NaN
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn from_bytes(bytes: &[u8]) -> Result<TsdfVolume, String> {
        if bytes.len() < 12 || &bytes[..4] != b"TSDF" {
            return Err("not a TSDF volume dump".into());
        }
        let resolution = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
        let size = f32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        // same bounds as `KFusionConfig::validate`: a forged dump must
        // not materialize a volume the config layer forbids
        if !(16..=1024).contains(&resolution) {
            return Err(format!("implausible resolution {resolution}"));
        }
        if !(size > 0.0) || size > 100.0 {
            return Err(format!("implausible size {size}"));
        }
        let n = resolution * resolution * resolution;
        let expected = 12 + n * 8;
        if bytes.len() != expected {
            return Err(format!("expected {expected} bytes, found {}", bytes.len()));
        }
        let read_f32s = |offset: usize| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    let at = offset + i * 4;
                    f32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
                })
                .collect()
        };
        Ok(TsdfVolume {
            resolution,
            size,
            voxel: size / resolution as f32,
            tsdf: read_f32s(12),
            weight: read_f32s(12 + n * 4),
        })
    }

    /// Compares the stored implicit surface against a reference signed
    /// distance function, returning the mean absolute surface error in
    /// metres over voxels near the zero crossing (|tsdf| < 0.5 and
    /// observed). Returns `None` when no voxels qualify.
    ///
    /// Used by the reconstruction-accuracy metric: the reference is the
    /// synthetic scene's exact SDF.
    pub fn surface_error(&self, reference: impl Fn(Vec3) -> f32, mu: f32) -> Option<f32> {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        let res = self.resolution;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let idx = self.index(x, y, z);
                    if self.weight[idx] <= 0.0 || self.tsdf[idx].abs() >= 0.5 {
                        continue;
                    }
                    let p = self.voxel_center(x, y, z);
                    // stored tsdf approximates distance/mu
                    let stored = self.tsdf[idx] * mu;
                    let actual = reference(p);
                    sum += f64::from((stored - actual).abs());
                    count += 1;
                }
            }
        }
        (count > 0).then(|| (sum / count as f64) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;

    /// Integrates a flat wall at `z = wall_z` seen from the origin.
    fn integrated_wall(res: usize, size: f32, wall_z: f32, frames: usize) -> TsdfVolume {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(res, size);
        let depth = Image2D::new(cam.width, cam.height, wall_z);
        // camera at the volume centre (x/y), at z=0, looking +z
        let pose = Se3::from_translation(Vec3::new(size / 2.0, size / 2.0, 0.0));
        for _ in 0..frames {
            vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        vol
    }

    #[test]
    fn new_volume_is_empty() {
        let vol = TsdfVolume::new(16, 1.0);
        assert_eq!(vol.occupied_voxels(), 0);
        assert_eq!(vol.voxel_tsdf(0, 0, 0), 1.0);
        assert_eq!(vol.voxel_weight(8, 8, 8), 0.0);
        assert_eq!(vol.memory_bytes(), 16 * 16 * 16 * 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resolution_panics() {
        let _ = TsdfVolume::new(0, 1.0);
    }

    #[test]
    fn integration_observes_voxels() {
        let vol = integrated_wall(32, 2.0, 1.0, 1);
        assert!(
            vol.occupied_voxels() > 1000,
            "got {}",
            vol.occupied_voxels()
        );
    }

    #[test]
    fn tsdf_sign_flips_across_wall() {
        let vol = integrated_wall(32, 2.0, 1.0, 3);
        // sample along the optical axis: in front of the wall (z < 1) the
        // tsdf is positive, behind it negative
        let front = vol.sample(Vec3::new(1.0, 1.0, 0.9)).expect("observed");
        let behind = vol.sample(Vec3::new(1.0, 1.0, 1.1)).expect("observed");
        assert!(front > 0.0, "front {front}");
        assert!(behind < 0.0, "behind {behind}");
    }

    #[test]
    fn zero_crossing_at_surface() {
        let vol = integrated_wall(64, 2.0, 1.0, 3);
        // bisect the zero crossing along the centre ray
        let mut lo = 0.8f32;
        let mut hi = 1.2f32;
        for _ in 0..30 {
            let mid = 0.5 * (lo + hi);
            let v = vol.sample(Vec3::new(1.0, 1.0, mid)).expect("observed");
            if v > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let crossing = 0.5 * (lo + hi);
        assert!((crossing - 1.0).abs() < 0.02, "surface at {crossing}");
    }

    #[test]
    fn gradient_points_towards_camera_side() {
        let vol = integrated_wall(32, 2.0, 1.0, 3);
        let g = vol.gradient(Vec3::new(1.0, 1.0, 1.0)).expect("observed");
        // tsdf decreases with z here, so gradient z must be negative
        assert!(g.z < 0.0, "gradient {g}");
    }

    #[test]
    fn sample_outside_returns_none() {
        let vol = TsdfVolume::new(16, 1.0);
        assert!(vol.sample(Vec3::new(-0.5, 0.5, 0.5)).is_none());
        assert!(vol.sample(Vec3::new(0.5, 0.5, 2.0)).is_none());
    }

    #[test]
    fn sample_unobserved_returns_none() {
        let vol = TsdfVolume::new(16, 1.0);
        assert!(vol.sample(Vec3::new(0.5, 0.5, 0.5)).is_none());
    }

    #[test]
    fn weight_saturates_at_max() {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(16, 2.0);
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        for _ in 0..5 {
            vol.integrate(&depth, &cam, &pose, 0.2, 3.0);
        }
        let max_w = (0..16)
            .flat_map(|z| (0..16).flat_map(move |y| (0..16).map(move |x| (x, y, z))))
            .map(|(x, y, z)| vol.voxel_weight(x, y, z))
            .fold(0.0f32, f32::max);
        assert!(max_w <= 3.0 + 1e-6);
        assert!(max_w > 2.9);
    }

    #[test]
    fn occluded_space_stays_unobserved() {
        let vol = integrated_wall(32, 2.0, 1.0, 1);
        // far behind the wall (z = 1.8): occluded, never updated
        assert!(vol.sample(Vec3::new(1.0, 1.0, 1.9)).is_none());
    }

    #[test]
    fn integration_is_thread_count_invariant() {
        let cam = PinholeCamera::tiny();
        // structured depth so updates vary across the volume
        let mut depth = Image2D::new(cam.width, cam.height, 1.0f32);
        for y in 0..cam.height {
            for x in 0..cam.width {
                depth.set(x, y, 0.8 + (x as f32 * 0.002) + (y as f32 * 0.001));
            }
        }
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        // 33³: does not divide evenly into bands
        let run = |threads: usize| {
            let mut vol = TsdfVolume::new(33, 2.0);
            let w1 = vol.integrate_with_threads(&depth, &cam, &pose, 0.2, 100.0, threads);
            let w2 = vol.integrate_with_threads(&depth, &cam, &pose, 0.2, 100.0, threads);
            (vol.to_bytes(), w1.ops.to_bits(), w2.ops.to_bits())
        };
        let reference = run(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(run(threads), reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn integration_workload_scales_with_resolution() {
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut small = TsdfVolume::new(16, 2.0);
        let mut large = TsdfVolume::new(32, 2.0);
        let w_small = small.integrate(&depth, &cam, &pose, 0.2, 100.0);
        let w_large = large.integrate(&depth, &cam, &pose, 0.2, 100.0);
        assert!(
            w_large.ops > 4.0 * w_small.ops,
            "8x voxels should cost much more"
        );
        assert!(w_large.bytes > 4.0 * w_small.bytes);
    }

    #[test]
    fn volume_bytes_roundtrip() {
        let vol = integrated_wall(24, 2.0, 1.0, 2);
        let bytes = vol.to_bytes();
        let back = TsdfVolume::from_bytes(&bytes).unwrap();
        assert_eq!(back.resolution(), vol.resolution());
        assert_eq!(back.size(), vol.size());
        assert_eq!(back.occupied_voxels(), vol.occupied_voxels());
        for z in (0..24).step_by(5) {
            for y in (0..24).step_by(5) {
                for x in (0..24).step_by(5) {
                    assert_eq!(back.voxel_tsdf(x, y, z), vol.voxel_tsdf(x, y, z));
                    assert_eq!(back.voxel_weight(x, y, z), vol.voxel_weight(x, y, z));
                }
            }
        }
    }

    #[test]
    fn volume_from_bytes_rejects_garbage() {
        assert!(TsdfVolume::from_bytes(b"nope").is_err());
        assert!(TsdfVolume::from_bytes(b"TSDF").is_err());
        let mut truncated = integrated_wall(16, 1.0, 0.5, 1).to_bytes();
        truncated.pop();
        assert!(TsdfVolume::from_bytes(&truncated).is_err());
        // implausible header values
        let mut bad = b"TSDF".to_vec();
        bad.extend_from_slice(&0u32.to_le_bytes());
        bad.extend_from_slice(&1.0f32.to_le_bytes());
        assert!(TsdfVolume::from_bytes(&bad).is_err());
    }

    #[test]
    fn from_bytes_bounds_match_config_validate() {
        // the config layer accepts resolutions 16..=1024; the dump
        // parser must agree at both edges
        let small = integrated_wall(16, 1.0, 0.5, 1);
        let back = TsdfVolume::from_bytes(&small.to_bytes()).expect("16 is the legal floor");
        assert_eq!(back.resolution(), 16);
        assert_eq!(back.occupied_voxels(), small.occupied_voxels());
        // 15 used to slip through the old `resolution == 0` guard
        let mut forged = b"TSDF".to_vec();
        forged.extend_from_slice(&15u32.to_le_bytes());
        forged.extend_from_slice(&1.0f32.to_le_bytes());
        forged.extend_from_slice(&vec![0u8; 15 * 15 * 15 * 8]);
        let err = TsdfVolume::from_bytes(&forged).unwrap_err();
        assert!(err.contains("implausible resolution"), "{err}");
        // 1024 passes the resolution gate (we can't afford the 8.6 GB
        // body here, so the failure must be about the length instead)
        let mut huge = b"TSDF".to_vec();
        huge.extend_from_slice(&1024u32.to_le_bytes());
        huge.extend_from_slice(&1.0f32.to_le_bytes());
        let err = TsdfVolume::from_bytes(&huge).unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }

    #[test]
    fn integration_rejects_non_finite_depth() {
        // a NaN/Inf-laced frame must leave every voxel finite and every
        // poisoned pixel unobserved
        let cam = PinholeCamera::tiny();
        let mut depth = Image2D::new(cam.width, cam.height, 1.0f32);
        for y in 0..cam.height {
            for x in 0..cam.width {
                match (x + y * cam.width) % 5 {
                    0 => depth.set(x, y, f32::NAN),
                    1 => depth.set(x, y, f32::INFINITY),
                    2 => depth.set(x, y, f32::NEG_INFINITY),
                    _ => {}
                }
            }
        }
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut vol = TsdfVolume::new(32, 2.0);
        vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        let res = vol.resolution();
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    assert!(
                        vol.voxel_tsdf(x, y, z).is_finite(),
                        "NaN escaped into tsdf at ({x},{y},{z})"
                    );
                    assert!(
                        vol.voxel_weight(x, y, z).is_finite(),
                        "NaN escaped into weight at ({x},{y},{z})"
                    );
                }
            }
        }
        // the surviving finite pixels still fuse normally
        assert!(vol.occupied_voxels() > 500, "got {}", vol.occupied_voxels());
    }

    #[test]
    fn surface_error_against_exact_plane() {
        let vol = integrated_wall(64, 2.0, 1.0, 5);
        // the exact SDF of the wall half-space z >= 1 is (1 - z)… distance
        // to surface along z for points in front: z - 1 is negative inside
        let err = vol
            .surface_error(|p| 1.0 - p.z, 0.2)
            .expect("surface voxels exist");
        // note: reference here is signed distance *to the wall plane* with
        // the same sign convention (positive in front)
        assert!(err < 0.05, "mean surface error {err} m");
    }
}
