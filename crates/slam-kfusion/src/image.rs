//! A minimal 2-D image container for depth, vertex and normal maps.

use slam_math::Vec3;
use std::fmt;

/// A row-major 2-D image of `T` values.
///
/// # Examples
///
/// ```
/// use slam_kfusion::Image2D;
/// let mut img = Image2D::new(4, 3, 0.0f32);
/// img.set(2, 1, 5.0);
/// assert_eq!(img.get(2, 1), 5.0);
/// assert_eq!(img.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Image2D<T> {
    width: usize,
    height: usize,
    data: Vec<T>,
}

impl<T: Copy> Image2D<T> {
    /// Creates an image filled with `fill`.
    pub fn new(width: usize, height: usize, fill: T) -> Image2D<T> {
        Image2D {
            width,
            height,
            data: vec![fill; width * height],
        }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<T>) -> Image2D<T> {
        assert_eq!(data.len(), width * height, "buffer size mismatch");
        Image2D {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for a zero-pixel image.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds. Hot loops bypass this accessor and use
    /// direct slice access instead.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> T {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x]
    }

    /// Value at `(x, y)`, or `None` when out of bounds.
    #[inline]
    pub fn try_get(&self, x: isize, y: isize) -> Option<T> {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            None
        } else {
            Some(self.data[y as usize * self.width + x as usize])
        }
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y * self.width + x] = v;
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw row-major buffer, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the image, returning the buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over `(x, y, value)` triples in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let w = self.width;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i % w, i / w, v))
    }
}

impl<T> fmt::Display for Image2D<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image2D({}x{})", self.width, self.height)
    }
}

/// A depth image in metres (`0.0` = hole).
pub type DepthImage = Image2D<f32>;

/// A per-pixel 3-D point map. Invalid pixels hold [`Vec3::ZERO`]
/// (distinguished by the paired validity convention: a vertex map pixel is
/// valid iff its depth source was valid, encoded here as `z > 0` for
/// camera-frame maps).
pub type VertexMap = Image2D<Vec3>;

/// A per-pixel unit-normal map. Invalid pixels hold [`Vec3::ZERO`].
pub type NormalMap = Image2D<Vec3>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills() {
        let img = Image2D::new(3, 2, 7u16);
        assert_eq!(img.len(), 6);
        assert!(img.as_slice().iter().all(|&v| v == 7));
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
    }

    #[test]
    fn from_vec_roundtrip() {
        let img = Image2D::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(img.get(0, 0), 1);
        assert_eq!(img.get(1, 1), 4);
        assert_eq!(img.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_vec_wrong_size_panics() {
        let _ = Image2D::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn get_set() {
        let mut img = Image2D::new(4, 4, 0.0f32);
        img.set(3, 2, 1.5);
        assert_eq!(img.get(3, 2), 1.5);
        assert_eq!(img.as_slice()[2 * 4 + 3], 1.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let img = Image2D::new(2, 2, 0u8);
        let _ = img.get(2, 0);
    }

    #[test]
    fn try_get_handles_borders() {
        let img = Image2D::from_vec(2, 1, vec![5, 6]);
        assert_eq!(img.try_get(0, 0), Some(5));
        assert_eq!(img.try_get(-1, 0), None);
        assert_eq!(img.try_get(0, 1), None);
        assert_eq!(img.try_get(2, 0), None);
    }

    #[test]
    fn enumerate_is_row_major() {
        let img = Image2D::from_vec(2, 2, vec![10, 11, 12, 13]);
        let px: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(px[0], (0, 0, 10));
        assert_eq!(px[1], (1, 0, 11));
        assert_eq!(px[2], (0, 1, 12));
        assert_eq!(px[3], (1, 1, 13));
    }

    #[test]
    fn empty_image() {
        let img = Image2D::new(0, 5, 0u8);
        assert!(img.is_empty());
        assert_eq!(format!("{img}"), "Image2D(0x5)");
    }
}
