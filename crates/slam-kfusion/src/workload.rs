//! Per-kernel workload instrumentation.
//!
//! The ISPASS'18 paper measures execution time and power on physical
//! devices (ODROID XU3, Android phones). This workspace replaces those
//! measurements with an analytic model: every kernel reports how much
//! arithmetic and memory traffic it actually performed, and the
//! `slam-power` crate maps those counts onto device models. Keeping the
//! counts *measured* (not estimated from parameters) means rates,
//! early-exits and data-dependent work (e.g. raycast step counts) are all
//! reflected, exactly like a hardware counter would.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The KinectFusion kernels, in pipeline order. Matches the kernel
/// breakdown SLAMBench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Kernel {
    /// Millimetre → metre conversion + input down-sampling.
    Mm2Meters,
    /// Bilateral filter on the input depth.
    BilateralFilter,
    /// Pyramid construction (depth-aware half-sampling).
    HalfSample,
    /// Back-projection of depth to camera-frame vertices.
    Depth2Vertex,
    /// Normal estimation from the vertex map.
    Vertex2Normal,
    /// ICP data association + Jacobian accumulation (all iterations).
    Track,
    /// The 6×6 normal-equation solve (all iterations).
    Solve,
    /// TSDF integration.
    Integrate,
    /// Model raycast (surface prediction).
    Raycast,
}

impl Kernel {
    /// All kernels in pipeline order.
    pub const ALL: [Kernel; 9] = [
        Kernel::Mm2Meters,
        Kernel::BilateralFilter,
        Kernel::HalfSample,
        Kernel::Depth2Vertex,
        Kernel::Vertex2Normal,
        Kernel::Track,
        Kernel::Solve,
        Kernel::Integrate,
        Kernel::Raycast,
    ];

    /// Short lower-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Mm2Meters => "mm2meters",
            Kernel::BilateralFilter => "bilateral",
            Kernel::HalfSample => "halfsample",
            Kernel::Depth2Vertex => "depth2vertex",
            Kernel::Vertex2Normal => "vertex2normal",
            Kernel::Track => "track",
            Kernel::Solve => "solve",
            Kernel::Integrate => "integrate",
            Kernel::Raycast => "raycast",
        }
    }

    /// Fraction of the kernel that is data-parallel (Amdahl). The solve is
    /// a small serial kernel; everything else is embarrassingly parallel
    /// over pixels or voxels — which is why KinectFusion maps so well to
    /// GPUs.
    pub fn parallel_fraction(self) -> f64 {
        match self {
            Kernel::Solve => 0.05,
            _ => 0.97,
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Measured work of one kernel invocation (or an accumulation of many).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    /// Arithmetic operations (flops and comparable integer ops).
    pub ops: f64,
    /// Bytes moved to/from memory.
    pub bytes: f64,
}

impl Workload {
    /// The zero workload.
    pub const ZERO: Workload = Workload {
        ops: 0.0,
        bytes: 0.0,
    };

    /// Creates a workload from op and byte counts.
    pub fn new(ops: f64, bytes: f64) -> Workload {
        Workload { ops, bytes }
    }

    /// Arithmetic intensity in ops/byte (`0` when no bytes were moved).
    pub fn intensity(&self) -> f64 {
        if self.bytes > 0.0 {
            self.ops / self.bytes
        } else {
            0.0
        }
    }

    /// True when no work was recorded.
    pub fn is_zero(&self) -> bool {
        self.ops == 0.0 && self.bytes == 0.0
    }
}

impl Add for Workload {
    type Output = Workload;
    fn add(self, rhs: Workload) -> Workload {
        Workload {
            ops: self.ops + rhs.ops,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl AddAssign for Workload {
    fn add_assign(&mut self, rhs: Workload) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} ops, {:.3e} B", self.ops, self.bytes)
    }
}

/// Workload of one full pipeline frame, broken down by kernel.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameWorkload {
    entries: Vec<(Kernel, Workload)>,
}

impl FrameWorkload {
    /// Creates an empty frame workload.
    pub fn new() -> FrameWorkload {
        FrameWorkload::default()
    }

    /// Adds work for a kernel (accumulates if already present).
    pub fn record(&mut self, kernel: Kernel, work: Workload) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| *k == kernel) {
            e.1 += work;
        } else {
            self.entries.push((kernel, work));
        }
    }

    /// The accumulated work for one kernel.
    pub fn kernel(&self, kernel: Kernel) -> Workload {
        self.entries
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, w)| *w)
            .unwrap_or(Workload::ZERO)
    }

    /// Iterates over `(kernel, workload)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Kernel, Workload)> + '_ {
        self.entries.iter().copied()
    }

    /// Total workload across all kernels.
    pub fn total(&self) -> Workload {
        self.entries
            .iter()
            .fold(Workload::ZERO, |acc, (_, w)| acc + *w)
    }

    /// Merges another frame's workload into this one (used when
    /// aggregating a whole sequence).
    pub fn merge(&mut self, other: &FrameWorkload) {
        for (k, w) in other.iter() {
            self.record(k, w);
        }
    }
}

impl fmt::Display for FrameWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, w) in &self.entries {
            writeln!(f, "{k:>14}: {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_addition() {
        let a = Workload::new(100.0, 50.0);
        let b = Workload::new(10.0, 5.0);
        let c = a + b;
        assert_eq!(c.ops, 110.0);
        assert_eq!(c.bytes, 55.0);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn intensity() {
        assert_eq!(Workload::new(100.0, 50.0).intensity(), 2.0);
        assert_eq!(Workload::ZERO.intensity(), 0.0);
        assert!(Workload::ZERO.is_zero());
    }

    #[test]
    fn frame_workload_accumulates_per_kernel() {
        let mut fw = FrameWorkload::new();
        fw.record(Kernel::Track, Workload::new(10.0, 4.0));
        fw.record(Kernel::Track, Workload::new(5.0, 2.0));
        fw.record(Kernel::Integrate, Workload::new(100.0, 80.0));
        assert_eq!(fw.kernel(Kernel::Track), Workload::new(15.0, 6.0));
        assert_eq!(fw.kernel(Kernel::Raycast), Workload::ZERO);
        let total = fw.total();
        assert_eq!(total.ops, 115.0);
        assert_eq!(total.bytes, 86.0);
    }

    #[test]
    fn merge_sums_frames() {
        let mut a = FrameWorkload::new();
        a.record(Kernel::Raycast, Workload::new(1.0, 1.0));
        let mut b = FrameWorkload::new();
        b.record(Kernel::Raycast, Workload::new(2.0, 3.0));
        b.record(Kernel::Solve, Workload::new(4.0, 0.0));
        a.merge(&b);
        assert_eq!(a.kernel(Kernel::Raycast), Workload::new(3.0, 4.0));
        assert_eq!(a.kernel(Kernel::Solve), Workload::new(4.0, 0.0));
    }

    #[test]
    fn kernel_names_unique() {
        let mut names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Kernel::ALL.len());
    }

    #[test]
    fn solve_is_mostly_serial() {
        assert!(Kernel::Solve.parallel_fraction() < 0.5);
        assert!(Kernel::Integrate.parallel_fraction() > 0.9);
    }

    #[test]
    fn display_formats() {
        let mut fw = FrameWorkload::new();
        fw.record(Kernel::Track, Workload::new(1e6, 1e5));
        let s = format!("{fw}");
        assert!(s.contains("track"));
        assert!(format!("{}", Kernel::Integrate) == "integrate");
    }
}
