//! Surface mesh extraction from the TSDF volume (marching cubes), as the
//! original KinectFusion and the SLAMBench GUI use for visualising and
//! exporting the reconstruction.

use crate::exec;
use crate::mc_tables::{EDGE_TABLE, TRI_TABLE};
use crate::volume::Volume;
use slam_math::Vec3;
use slam_trace::Tracer;
use std::fmt::Write as _;

/// Cube corner offsets in (x, y, z), Bourke ordering.
const CORNERS: [(usize, usize, usize); 8] = [
    (0, 0, 0),
    (1, 0, 0),
    (1, 1, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 0, 1),
    (1, 1, 1),
    (0, 1, 1),
];

/// The two corner indices of each of the twelve cube edges.
const EDGES: [(usize, usize); 12] = [
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 0),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 4),
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// A triangle mesh: flat vertex list plus index triples.
#[derive(Debug, Clone, Default)]
pub struct TriangleMesh {
    /// Vertex positions in world coordinates.
    pub vertices: Vec<Vec3>,
    /// Counter-clockwise triangles as vertex-index triples.
    pub triangles: Vec<[u32; 3]>,
}

impl TriangleMesh {
    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// True when the mesh has no geometry.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }

    /// Total surface area in m².
    pub fn surface_area(&self) -> f32 {
        self.triangles
            .iter()
            .map(|t| {
                let a = self.vertices[t[0] as usize];
                let b = self.vertices[t[1] as usize];
                let c = self.vertices[t[2] as usize];
                (b - a).cross(c - a).norm() * 0.5
            })
            .sum()
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` for an empty
    /// mesh.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Serialises the mesh in the OFF text format (readable by MeshLab
    /// and friends).
    pub fn to_off(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "OFF");
        let _ = writeln!(out, "{} {} 0", self.vertices.len(), self.triangles.len());
        for v in &self.vertices {
            let _ = writeln!(out, "{} {} {}", v.x, v.y, v.z);
        }
        for t in &self.triangles {
            let _ = writeln!(out, "3 {} {} {}", t[0], t[1], t[2]);
        }
        out
    }
}

/// Extracts the zero-level isosurface of the TSDF with marching cubes,
/// using all available threads (see [`marching_cubes_with_threads`]).
///
/// Only cells where all eight corners have been observed (non-zero
/// integration weight) produce geometry, so unobserved space does not
/// grow spurious walls. Vertices on shared cell edges are *not* welded
/// (each triangle owns its vertices), which is what the original
/// KinectFusion's renderer produced too.
pub fn marching_cubes<V: Volume + Sync + ?Sized>(volume: &V) -> TriangleMesh {
    marching_cubes_with_threads(volume, 0)
}

/// Like [`marching_cubes`] with an explicit thread count (`0` = all
/// available). Runs on the shared [`exec`] worker pool over fixed
/// z-slabs, each emitting into its own vertex buffer; the slabs are
/// stitched back together **in slab order** with re-based triangle
/// indices, reproducing the serial emission order exactly — the mesh is
/// bit-identical for every thread count.
pub fn marching_cubes_with_threads<V: Volume + Sync + ?Sized>(
    volume: &V,
    threads: usize,
) -> TriangleMesh {
    marching_cubes_traced(volume, threads, Tracer::off())
}

/// Like [`marching_cubes_with_threads`], recording a `marching_cubes`
/// kernel span plus per-slab band spans into `tracer`. Tracing never
/// changes the mesh.
pub fn marching_cubes_traced<V: Volume + Sync + ?Sized>(
    volume: &V,
    threads: usize,
    tracer: &Tracer,
) -> TriangleMesh {
    let _kernel = tracer.kernel_span("marching_cubes");
    let res = volume.resolution();
    if res < 2 {
        return TriangleMesh::default();
    }
    let threads = exec::effective_threads(threads);
    let slabs = exec::run_bands_traced(tracer, "marching_cubes", threads, res - 1, |zs| {
        let mut mesh = TriangleMesh::default();
        for z in zs {
            march_slice(volume, z, &mut mesh);
        }
        mesh
    });
    // stitch the per-slab buffers in slab order, re-basing indices
    let mut mesh = TriangleMesh::default();
    for slab in slabs {
        let base = mesh.vertices.len() as u32;
        mesh.vertices.extend(slab.vertices);
        mesh.triangles.extend(
            slab.triangles
                .into_iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }
    mesh
}

/// Marches every cell of one z-slice, appending geometry to `mesh` in
/// the canonical y-major/x-fastest cell order.
fn march_slice<V: Volume + ?Sized>(volume: &V, z: usize, mesh: &mut TriangleMesh) {
    let res = volume.resolution();
    for y in 0..res - 1 {
        for x in 0..res - 1 {
            let mut values = [0.0f32; 8];
            let mut observed = true;
            for (i, &(dx, dy, dz)) in CORNERS.iter().enumerate() {
                let (cx, cy, cz) = (x + dx, y + dy, z + dz);
                if volume.voxel_weight(cx, cy, cz) <= 0.0 {
                    observed = false;
                    break;
                }
                values[i] = volume.voxel_tsdf(cx, cy, cz);
            }
            if !observed {
                continue;
            }
            let mut case = 0usize;
            for (i, &v) in values.iter().enumerate() {
                if v < 0.0 {
                    case |= 1 << i;
                }
            }
            let edges = EDGE_TABLE[case];
            if edges == 0 {
                continue;
            }
            // interpolated crossing point on each crossed edge
            let mut edge_points = [Vec3::ZERO; 12];
            for (e, &(a, b)) in EDGES.iter().enumerate() {
                if edges & (1 << e) == 0 {
                    continue;
                }
                let (va, vb) = (values[a], values[b]);
                let t = if (va - vb).abs() < 1e-9 {
                    0.5
                } else {
                    va / (va - vb)
                };
                let pa = corner_pos(volume, x, y, z, CORNERS[a]);
                let pb = corner_pos(volume, x, y, z, CORNERS[b]);
                edge_points[e] = pa.lerp(pb, t.clamp(0.0, 1.0));
            }
            let tris = &TRI_TABLE[case];
            let mut i = 0;
            while i + 2 < tris.len() && tris[i] >= 0 {
                let base = mesh.vertices.len() as u32;
                mesh.vertices.push(edge_points[tris[i] as usize]);
                mesh.vertices.push(edge_points[tris[i + 1] as usize]);
                mesh.vertices.push(edge_points[tris[i + 2] as usize]);
                mesh.triangles.push([base, base + 1, base + 2]);
                i += 3;
            }
        }
    }
}

fn corner_pos<V: Volume + ?Sized>(
    volume: &V,
    x: usize,
    y: usize,
    z: usize,
    d: (usize, usize, usize),
) -> Vec3 {
    volume.voxel_center(x + d.0, y + d.1, z + d.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;
    use crate::tsdf::TsdfVolume;
    use crate::tsdf_sparse::SparseTsdfVolume;
    use slam_math::camera::PinholeCamera;
    use slam_math::Se3;

    /// A volume with a fused flat wall at z = 1 m.
    fn wall_volume(res: usize) -> TsdfVolume {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(res, 2.0);
        let depth = Image2D::new(cam.width, cam.height, 1.0f32);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        for _ in 0..3 {
            vol.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        vol
    }

    #[test]
    fn empty_volume_gives_empty_mesh() {
        let vol = TsdfVolume::new(16, 1.0);
        let mesh = marching_cubes(&vol);
        assert!(mesh.is_empty());
        assert_eq!(mesh.surface_area(), 0.0);
        assert!(mesh.bounds().is_none());
    }

    #[test]
    fn wall_produces_planar_mesh_near_z1() {
        let vol = wall_volume(48);
        let mesh = marching_cubes(&vol);
        assert!(!mesh.is_empty(), "wall should produce triangles");
        // every vertex close to the z = 1 plane
        for v in &mesh.vertices {
            assert!((v.z - 1.0).abs() < 0.1, "vertex off the wall plane: {v}");
        }
    }

    #[test]
    fn wall_mesh_area_is_plausible() {
        let vol = wall_volume(48);
        let mesh = marching_cubes(&vol);
        // the visible wall patch inside a 2 m volume through a ~58° FOV
        // camera at 1 m: roughly 1.1 x 0.9 m, and at least a substantial
        // fraction must be meshed
        let area = mesh.surface_area();
        assert!(area > 0.3, "area {area}");
        assert!(area < 4.0, "area {area} exceeds the volume cross-section");
    }

    #[test]
    fn triangles_index_valid_vertices() {
        let vol = wall_volume(32);
        let mesh = marching_cubes(&vol);
        for t in &mesh.triangles {
            for &i in t {
                assert!((i as usize) < mesh.vertices.len());
            }
        }
        assert_eq!(mesh.triangle_count(), mesh.triangles.len());
    }

    #[test]
    fn bounds_contain_all_vertices() {
        let vol = wall_volume(32);
        let mesh = marching_cubes(&vol);
        let (lo, hi) = mesh.bounds().expect("non-empty");
        for v in &mesh.vertices {
            assert!(v.x >= lo.x - 1e-6 && v.x <= hi.x + 1e-6);
            assert!(v.y >= lo.y - 1e-6 && v.y <= hi.y + 1e-6);
            assert!(v.z >= lo.z - 1e-6 && v.z <= hi.z + 1e-6);
        }
    }

    #[test]
    fn off_export_is_well_formed() {
        let vol = wall_volume(24);
        let mesh = marching_cubes(&vol);
        let off = mesh.to_off();
        let mut lines = off.lines();
        assert_eq!(lines.next(), Some("OFF"));
        let counts: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(counts[0], mesh.vertices.len());
        assert_eq!(counts[1], mesh.triangles.len());
        assert_eq!(off.lines().count(), 2 + counts[0] + counts[1]);
    }

    #[test]
    fn marching_cubes_is_thread_count_invariant() {
        // 33³ so the 32 marchable slices do not divide evenly into bands
        let vol = wall_volume(33);
        let reference = marching_cubes_with_threads(&vol, 1);
        assert!(!reference.is_empty());
        for threads in [2usize, 4, 7] {
            let mesh = marching_cubes_with_threads(&vol, threads);
            assert_eq!(
                mesh.triangles, reference.triangles,
                "{threads} threads diverged"
            );
            assert_eq!(mesh.vertices.len(), reference.vertices.len());
            for (a, b) in mesh.vertices.iter().zip(&reference.vertices) {
                for (ac, bc) in [(a.x, b.x), (a.y, b.y), (a.z, b.z)] {
                    assert_eq!(ac.to_bits(), bc.to_bits(), "{threads} threads diverged");
                }
            }
        }
    }

    #[test]
    fn sparse_backend_produces_identical_mesh() {
        // same frames, same poses, both backends: the triangle-emitting
        // cells lie strictly inside the truncation band, where the two
        // backends are bit-identical — so the meshes must be too
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.0f32);
        let mut dense = TsdfVolume::new(48, 2.0);
        let mut sparse = SparseTsdfVolume::new(48, 2.0);
        for i in 0..3 {
            let pose = Se3::from_translation(Vec3::new(0.95 + 0.05 * i as f32, 1.0, 0.0));
            dense.integrate(&depth, &cam, &pose, 0.2, 100.0);
            sparse.integrate(&depth, &cam, &pose, 0.2, 100.0);
        }
        let dm = marching_cubes(&dense);
        let sm = marching_cubes(&sparse);
        assert!(!dm.is_empty());
        assert_eq!(dm.triangles, sm.triangles, "triangle lists differ");
        assert_eq!(dm.vertices.len(), sm.vertices.len());
        for (a, b) in dm.vertices.iter().zip(&sm.vertices) {
            for (ac, bc) in [(a.x, b.x), (a.y, b.y), (a.z, b.z)] {
                assert_eq!(ac.to_bits(), bc.to_bits(), "vertex differs: {a} vs {b}");
            }
        }
    }

    #[test]
    fn finer_volume_gives_finer_mesh() {
        let coarse = marching_cubes(&wall_volume(24));
        let fine = marching_cubes(&wall_volume(48));
        assert!(fine.triangle_count() > coarse.triangle_count());
    }

    /// Builds a volume holding an analytic sphere SDF (every voxel
    /// observed), via the binary dump format.
    fn analytic_sphere_volume(res: usize, size: f32, radius: f32) -> TsdfVolume {
        let c = size / 2.0;
        let mu = 3.0 * size / res as f32;
        let mut bytes = b"TSDF".to_vec();
        bytes.extend_from_slice(&(res as u32).to_le_bytes());
        bytes.extend_from_slice(&size.to_le_bytes());
        let voxel = size / res as f32;
        for z in 0..res {
            for y in 0..res {
                for x in 0..res {
                    let p = Vec3::new(
                        (x as f32 + 0.5) * voxel,
                        (y as f32 + 0.5) * voxel,
                        (z as f32 + 0.5) * voxel,
                    );
                    let d = (p - Vec3::splat(c)).norm() - radius;
                    let t = (d / mu).clamp(-1.0, 1.0);
                    bytes.extend_from_slice(&t.to_le_bytes());
                }
            }
        }
        for _ in 0..res * res * res {
            bytes.extend_from_slice(&1.0f32.to_le_bytes());
        }
        TsdfVolume::from_bytes(&bytes).expect("well-formed dump")
    }

    #[test]
    fn sphere_mesh_is_closed_with_correct_area() {
        let radius = 0.6f32;
        let mesh = marching_cubes(&analytic_sphere_volume(48, 2.0, radius));
        assert!(!mesh.is_empty());
        // surface area ≈ 4 π r²
        let expected = 4.0 * std::f32::consts::PI * radius * radius;
        let area = mesh.surface_area();
        assert!(
            (area - expected).abs() / expected < 0.05,
            "area {area} vs sphere {expected}"
        );
        // weld vertices by quantised position, then check the surface is
        // closed: V - E + F = 2 (Euler characteristic of a sphere)
        use std::collections::HashMap;
        let mut ids: HashMap<(i64, i64, i64), u64> = HashMap::new();
        let quantise = |v: Vec3| {
            (
                (v.x * 1e5).round() as i64,
                (v.y * 1e5).round() as i64,
                (v.z * 1e5).round() as i64,
            )
        };
        let mut weld = |v: Vec3| -> u64 {
            let n = ids.len() as u64;
            *ids.entry(quantise(v)).or_insert(n)
        };
        let mut edges = std::collections::HashSet::new();
        let mut faces = 0usize;
        for t in &mesh.triangles {
            let a = weld(mesh.vertices[t[0] as usize]);
            let b = weld(mesh.vertices[t[1] as usize]);
            let c = weld(mesh.vertices[t[2] as usize]);
            if a == b || b == c || a == c {
                continue; // degenerate sliver collapsed by welding
            }
            faces += 1;
            for (p, q) in [(a, b), (b, c), (c, a)] {
                edges.insert(if p < q { (p, q) } else { (q, p) });
            }
        }
        let euler = ids.len() as i64 - edges.len() as i64 + faces as i64;
        assert_eq!(euler, 2, "V={} E={} F={faces}", ids.len(), edges.len());
    }

    #[test]
    fn mesh_vertices_lie_on_the_zero_crossing() {
        let vol = wall_volume(48);
        let mesh = marching_cubes(&vol);
        // sample the TSDF at a few mesh vertices: should be near zero
        for v in mesh.vertices.iter().step_by(97) {
            if let Some(t) = vol.sample(*v) {
                assert!(t.abs() < 0.2, "tsdf {t} at mesh vertex {v}");
            }
        }
    }
}
