//! Shared worker-pool execution layer for the hot kernels.
//!
//! All parallel kernels (bilateral filter, ICP association, TSDF
//! integration, raycast, marching cubes) run on one process-wide pool of
//! long-lived worker threads instead of spawning OS threads per frame.
//! The submitting thread participates in executing its own tasks, so a
//! kernel never blocks idle while work remains, and a pool worker that
//! itself submits work (nested parallelism) simply drains its inner task
//! group in place — nesting cannot deadlock.
//!
//! # Determinism
//!
//! Work is partitioned by [`band_ranges`], which derives the band layout
//! from the *data size only* — never from the thread count. Each band is
//! computed independently and the per-band results are reduced in band
//! order by the caller. Floating-point reductions therefore associate the
//! same way no matter how many threads ran, and every kernel output is
//! bit-identical across thread counts (including 1).
//!
//! # Thread budgets
//!
//! Coarse-grained outer parallelism (e.g. evaluating many configurations
//! at once during design-space exploration) caps the kernels underneath
//! it with [`with_thread_budget`], so outer × inner parallelism never
//! oversubscribes the machine. [`effective_threads`] resolves a
//! configuration's `threads` knob against the machine size and the
//! active budget, and is the single thread-count derivation used
//! everywhere.
//!
//! # Correctness tooling
//!
//! The pool protocol ([`TaskGroup`], [`PoolShared`]) is written against
//! the [`sync`] facade, so the identical source compiles either over
//! `std::sync` (default) or over the in-tree model checker ([`model`],
//! under `--cfg loom`). `tests/loom_exec.rs` uses the latter to explore
//! thread interleavings of claiming, completion counting, panic
//! forwarding, queue stragglers, and shutdown systematically; the
//! lifetime-erasure safety argument in [`erase_lifetime`] leans on
//! exactly the invariants that harness checks.

#[cfg(loom)]
pub mod model;
mod sync;

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

use slam_trace::Tracer;
use sync::{AtomicUsize, Condvar, Mutex, Ordering};

/// A unit of work submitted to the pool: one boxed closure whose result
/// is collected in submission order.
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// Maximum number of bands [`band_ranges`] splits a dimension into.
///
/// Large enough that up to `MAX_BANDS` threads can be kept busy and the
/// longest band cannot dominate, small enough that per-band overhead
/// stays negligible.
pub const MAX_BANDS: usize = 64;

/// Splits `0..n` into at most [`MAX_BANDS`] contiguous, near-equal
/// ranges. The layout depends only on `n`, never on the thread count, so
/// per-band results always reduce in the same order regardless of how
/// many threads execute the bands.
///
/// # Examples
///
/// ```
/// use slam_kfusion::exec::band_ranges;
/// let bands = band_ranges(10);
/// assert_eq!(bands.len(), 10); // n <= MAX_BANDS: one band per item
/// assert_eq!(bands[0], 0..1);
/// let big = band_ranges(1000);
/// assert_eq!(big.len(), 63);
/// assert_eq!(big.iter().map(|r| r.len()).sum::<usize>(), 1000);
/// ```
pub fn band_ranges(n: usize) -> Vec<Range<usize>> {
    let bands = n.min(MAX_BANDS);
    if bands == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(bands);
    let mut out = Vec::with_capacity(bands);
    let mut start = 0usize;
    while start < n {
        let end = (start + per).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

thread_local! {
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with kernel parallelism on this thread capped at `limit`
/// (at least 1). Used by coarse-grained outer parallelism — e.g. a
/// configuration sweep evaluating many pipelines at once — so that
/// outer workers × inner kernel threads never multiply beyond the
/// machine. The previous budget is restored afterwards, even on panic.
pub fn with_thread_budget<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(|b| b.replace(Some(limit.max(1))));
    let _restore = Restore(prev);
    f()
}

/// The kernel thread budget active on this thread, if any.
pub fn thread_budget() -> Option<usize> {
    BUDGET.with(|b| b.get())
}

/// Total concurrency the pool offers: its workers plus the submitting
/// thread (the machine's available parallelism).
pub fn available_threads() -> usize {
    pool().max_concurrency()
}

/// Resolves a `threads` knob into an actual thread count: `0` means
/// "all available", anything else is clamped to the machine size, and
/// the active [`with_thread_budget`] cap (if any) is applied on top.
/// Always at least 1. This is the single thread-count derivation the
/// kernels share.
pub fn effective_threads(requested: usize) -> usize {
    let avail = available_threads();
    let t = if requested == 0 {
        avail
    } else {
        requested.min(avail)
    };
    match thread_budget() {
        Some(b) => t.min(b).max(1),
        None => t.max(1),
    }
}

/// Runs `tasks` on the global pool with up to `threads` threads
/// (including the calling thread) and returns their results in
/// submission order. With `threads <= 1`, a single task, or no pool
/// workers, the tasks simply run serially on the caller.
///
/// Panics from tasks are forwarded to the caller after all tasks of the
/// group have finished.
pub fn run_tasks<'a, R: Send>(threads: usize, tasks: Vec<Task<'a, R>>) -> Vec<R> {
    pool().run_tasks(threads, tasks)
}

/// Convenience for read-only banded reductions: runs `f` over the
/// canonical [`band_ranges`] of `0..n` with up to `threads` threads and
/// returns the per-band results **in band order**, ready for an ordered
/// (deterministic) reduction by the caller.
pub fn run_bands<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let f = &f;
    let tasks: Vec<Task<'_, R>> = band_ranges(n)
        .into_iter()
        .map(|range| Box::new(move || f(range)) as Task<'_, R>)
        .collect();
    run_tasks(threads, tasks)
}

/// Like [`run_tasks`], with each task wrapped in a `name`d
/// [`SpanLevel::Band`](slam_trace::SpanLevel::Band) span recorded on
/// whichever pool worker executes it, plus `pool.groups` / `pool.tasks`
/// counter bumps. With a disabled tracer this is exactly [`run_tasks`]
/// (no wrapping, no allocation).
///
/// Tracing never changes scheduling or results: the wrappers run the
/// original tasks unchanged and results still return in submission
/// order.
pub fn trace_tasks<'a, R: Send + 'a>(
    tracer: &'a Tracer,
    name: &'static str,
    threads: usize,
    tasks: Vec<Task<'a, R>>,
) -> Vec<R> {
    if !tracer.enabled() {
        return run_tasks(threads, tasks);
    }
    tracer.counter("pool.groups", 1);
    tracer.counter("pool.tasks", tasks.len() as u64);
    let tasks: Vec<Task<'a, R>> = tasks
        .into_iter()
        .map(|task| {
            Box::new(move || {
                let _band = tracer.band_span(name);
                task()
            }) as Task<'a, R>
        })
        .collect();
    run_tasks(threads, tasks)
}

/// Like [`run_bands`], with per-band spans and pool counters recorded
/// into `tracer` (see [`trace_tasks`]). With a disabled tracer this is
/// exactly [`run_bands`].
pub fn run_bands_traced<R, F>(
    tracer: &Tracer,
    name: &'static str,
    threads: usize,
    n: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let f = &f;
    let tasks: Vec<Task<'_, R>> = band_ranges(n)
        .into_iter()
        .map(|range| Box::new(move || f(range)) as Task<'_, R>)
        .collect();
    trace_tasks(tracer, name, threads, tasks)
}

// --- blessed ordered reductions -------------------------------------
//
// Float addition is non-associative, so a parallel accumulation is
// bit-identical run to run only if the reduction order is fixed. The
// pool already returns results in submission/band order; these helpers
// make the ordered fold part of the submission call itself, so the
// contract is visible at every call site and the `float-reduce` lint
// (`cargo xtask lint --explain XT201`) can enforce that no ad-hoc
// reduction bypasses it.

/// Runs `tasks` on the pool and folds the results **in submission
/// order** with `fold`. The blessed way to aggregate task results.
pub fn reduce_tasks<'a, R, A, F>(threads: usize, tasks: Vec<Task<'a, R>>, init: A, fold: F) -> A
where
    R: Send,
    F: FnMut(A, R) -> A,
{
    run_tasks(threads, tasks).into_iter().fold(init, fold)
}

/// [`reduce_tasks`] with per-task spans and pool counters recorded into
/// `tracer` (see [`trace_tasks`]).
pub fn reduce_tasks_traced<'a, R, A, F>(
    tracer: &'a Tracer,
    name: &'static str,
    threads: usize,
    tasks: Vec<Task<'a, R>>,
    init: A,
    fold: F,
) -> A
where
    R: Send + 'a,
    F: FnMut(A, R) -> A,
{
    trace_tasks(tracer, name, threads, tasks)
        .into_iter()
        .fold(init, fold)
}

/// Sums task results **in submission order**: `reduce_tasks` for the
/// common additive case.
pub fn sum_tasks<'a, R>(threads: usize, tasks: Vec<Task<'a, R>>) -> R
where
    R: Send + std::iter::Sum<R>,
{
    run_tasks(threads, tasks).into_iter().sum()
}

/// [`sum_tasks`] with per-task spans and pool counters recorded into
/// `tracer` (see [`trace_tasks`]).
pub fn sum_tasks_traced<'a, R>(
    tracer: &'a Tracer,
    name: &'static str,
    threads: usize,
    tasks: Vec<Task<'a, R>>,
) -> R
where
    R: Send + std::iter::Sum<R> + 'a,
{
    trace_tasks(tracer, name, threads, tasks).into_iter().sum()
}

/// Runs `f` over the canonical [`band_ranges`] of `0..n` (with per-band
/// spans, see [`run_bands_traced`]) and folds the per-band results **in
/// band order** with `fold`. Because the band layout depends only on
/// `n`, the fold order — and therefore any float accumulation — is
/// independent of the thread count.
pub fn reduce_bands_traced<R, A, F, G>(
    tracer: &Tracer,
    name: &'static str,
    threads: usize,
    n: usize,
    f: F,
    init: A,
    fold: G,
) -> A
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    run_bands_traced(tracer, name, threads, n, f)
        .into_iter()
        .fold(init, fold)
}

/// The process-wide worker pool, created on first use with one worker
/// per available hardware thread minus one (the submitter supplies the
/// remaining thread). Workers live for the rest of the process.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(hw)
    })
}

/// A type-erased, lifetime-erased task, produced only by
/// [`erase_lifetime`]; see there for why the `'static` is a fiction the
/// group protocol makes safe.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Erases the borrow lifetime of a pool job, pretending it is `'static`.
///
/// This is the workspace's one `unsafe` expression (`#![deny(unsafe_code)]`
/// everywhere, enforced by `cargo xtask lint`), kept in a private named
/// helper so the obligation it places on callers is written once:
///
/// **Invariant — the caller's stack frame must outlive every access to
/// the job.** Concretely, [`PoolShared::run_tasks_on`] upholds it
/// because:
///
/// 1. it does not return (or unwind) before [`TaskGroup::wait_finished`]
///    observes that *every* job of the group has been executed — the
///    `done` counter counts each claimed index exactly once, and the
///    finished latch flips only at `done == jobs.len()`;
/// 2. a job leaves its slot only by being claimed (`Option::take` under
///    the slot mutex), so after the latch flips no job referencing the
///    caller's frame exists anywhere;
/// 3. queue stragglers — workers popping a leftover `Arc<TaskGroup>`
///    clone after the submitter returned — find `next >= jobs.len()` or
///    empty slots and touch no borrowed data (the group's own storage is
///    kept alive by the `Arc` they hold).
///
/// The interleaving-sensitive parts of this argument (1–3) are exactly
/// what `tests/loom_exec.rs` model-checks, and `run_tasks_on` re-asserts
/// the postcondition with a `debug_assert!` on the completion count.
#[allow(unsafe_code)]
fn erase_lifetime(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    // SAFETY: see the invariant above — upheld by the group protocol in
    // `PoolShared::run_tasks_on`, the only caller.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
}

/// One batch of jobs submitted together. Workers and the submitter claim
/// jobs by atomic index; the submitter blocks until every job has run.
///
/// Public so the model-checking harness (`tests/loom_exec.rs`) can drive
/// the protocol directly; library callers use [`run_tasks`].
pub struct TaskGroup {
    jobs: Vec<Mutex<Option<Job>>>,
    next: AtomicUsize,
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl TaskGroup {
    /// Wraps `jobs` into a claimable group.
    pub fn new(jobs: Vec<Job>) -> TaskGroup {
        TaskGroup {
            jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }

    /// Claims and runs jobs until none are left unclaimed. Each job runs
    /// exactly once; the claimer that completes the last job flips the
    /// finished latch.
    pub fn run_available(&self) {
        let total = self.jobs.len();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return;
            }
            let job = self.jobs[i].lock().take();
            if let Some(job) = job {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            let previously_done = self.done.fetch_add(1, Ordering::AcqRel);
            debug_assert!(
                previously_done < total,
                "claim counted twice: done {previously_done} >= total {total}"
            );
            if previously_done + 1 == total {
                *self.finished.lock() = true;
                self.finished_cv.notify_all();
            }
        }
    }

    /// Blocks until every job of the group has been executed.
    pub fn wait_finished(&self) {
        let mut finished = self.finished.lock();
        while !*finished {
            finished = self.finished_cv.wait(finished);
        }
    }

    /// Number of jobs that have finished executing.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Acquire)
    }

    /// Whether every job slot is empty (claimed). After
    /// [`wait_finished`](TaskGroup::wait_finished) returns this must
    /// hold; the model-checking harness asserts it on every schedule.
    pub fn all_jobs_consumed(&self) -> bool {
        self.jobs.iter().all(|slot| slot.lock().is_none())
    }

    /// Takes the first captured job panic, if any job panicked.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().take()
    }
}

/// Queue state shared between submitters and workers.
struct PoolQueue {
    groups: VecDeque<Arc<TaskGroup>>,
    shutdown: bool,
}

/// The state shared by a pool's workers and submitters: the group queue
/// plus the full submission protocol ([`run_tasks_on`]
/// (PoolShared::run_tasks_on)) and the worker body ([`worker_loop`]
/// (PoolShared::worker_loop)).
///
/// Public so the model-checking harness can run *this exact code* on
/// model threads; library callers use [`WorkerPool`] / [`run_tasks`].
pub struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
}

impl Default for PoolShared {
    fn default() -> PoolShared {
        PoolShared::new()
    }
}

impl PoolShared {
    /// Creates an empty queue in the running state.
    pub fn new() -> PoolShared {
        PoolShared {
            queue: Mutex::new(PoolQueue {
                groups: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        }
    }

    /// Enqueues `copies` references to `group` and wakes the workers.
    /// One queue entry enlists (at most) one worker into the group.
    pub fn submit(&self, group: &Arc<TaskGroup>, copies: usize) {
        if copies == 0 {
            return;
        }
        let mut queue = self.queue.lock();
        for _ in 0..copies {
            queue.groups.push_back(Arc::clone(group));
        }
        drop(queue);
        self.work_cv.notify_all();
    }

    /// Asks workers to exit once the queue has drained. Pending groups
    /// are still popped (their stragglers find empty slots and return
    /// immediately), so a shutdown never strands a submitter.
    pub fn request_shutdown(&self) {
        self.queue.lock().shutdown = true;
        self.work_cv.notify_all();
    }

    /// The worker body: pop a group, help drain it, repeat; return once
    /// shutdown is requested and the queue is empty.
    pub fn worker_loop(&self) {
        loop {
            let group = {
                let mut queue = self.queue.lock();
                loop {
                    if let Some(g) = queue.groups.pop_front() {
                        break g;
                    }
                    if queue.shutdown {
                        return;
                    }
                    queue = self.work_cv.wait(queue);
                }
            };
            group.run_available();
        }
    }

    /// The full submission protocol: erase the task lifetimes, enqueue
    /// the group for `helpers` workers, help drain it, block until every
    /// job ran, forward the first task panic, and collect the results in
    /// submission order. The lifetime-erasure safety argument lives in
    /// [`erase_lifetime`] and is upheld *here*.
    pub fn run_tasks_on<'a, R: Send>(&self, helpers: usize, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        let total = tasks.len();
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Job> = tasks
            .into_iter()
            .zip(results.iter())
            .map(|(task, slot)| {
                erase_lifetime(Box::new(move || {
                    let value = task();
                    *slot.lock() = Some(value);
                }))
            })
            .collect();
        let group = Arc::new(TaskGroup::new(jobs));
        self.submit(&group, helpers);
        group.run_available();
        group.wait_finished();
        debug_assert!(
            group.completed() == total,
            "finished latch flipped before all jobs completed"
        );
        if let Some(payload) = group.take_panic() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                // xtask-allow: panic-path — reason: protocol invariant: wait_finished implies every job stored its result; machine-checked by tests/loom_exec.rs
                slot.into_inner().expect("every task produced a result")
            })
            .collect()
    }
}

/// A pool of persistent worker threads executing [`TaskGroup`]s.
///
/// Use the process-wide instance via [`pool`] (or the [`run_tasks`] /
/// [`run_bands`] free functions); a locally constructed pool should be
/// retired with [`shutdown`](WorkerPool::shutdown), otherwise its
/// workers live (idle) for the rest of the process.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool offering `total_threads` of concurrency: it spawns
    /// `total_threads - 1` workers, the submitting thread being the last
    /// one. `total_threads <= 1` creates a pool with no workers
    /// (everything runs on the submitter).
    pub fn new(total_threads: usize) -> WorkerPool {
        let workers = total_threads.saturating_sub(1);
        let shared = Arc::new(PoolShared::new());
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("slam-exec-{i}"))
                .spawn(move || shared.worker_loop())
                // xtask-allow: panic-path — reason: a machine that cannot spawn a thread at startup has no graceful degradation path
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        WorkerPool {
            shared,
            workers,
            handles,
        }
    }

    /// Number of persistent worker threads (not counting submitters).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Maximum concurrency for one task group: all workers plus the
    /// submitting thread.
    pub fn max_concurrency(&self) -> usize {
        self.workers + 1
    }

    /// Retires the pool: asks the workers to exit once the queue drains
    /// and joins them. Must not race in-flight [`run_tasks`]
    /// (WorkerPool::run_tasks) calls on other threads.
    pub fn shutdown(self) {
        self.shared.request_shutdown();
        for handle in self.handles {
            let _ = handle.join();
        }
    }

    /// See the free function [`run_tasks`].
    pub fn run_tasks<'a, R: Send>(&self, threads: usize, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        let total = tasks.len();
        if threads <= 1 || total <= 1 || self.workers == 0 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        // enlist at most threads-1 helpers; the submitter is the last thread
        let helpers = (threads - 1).min(self.workers).min(total - 1);
        self.shared.run_tasks_on(helpers, tasks)
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn band_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 63, 64, 65, 100, 1000, 4097] {
            let bands = band_ranges(n);
            assert!(bands.len() <= MAX_BANDS);
            let mut expected = 0usize;
            for b in &bands {
                assert_eq!(b.start, expected, "bands must be contiguous for n={n}");
                assert!(!b.is_empty(), "empty band for n={n}");
                expected = b.end;
            }
            assert_eq!(expected, n, "bands must cover 0..{n}");
        }
    }

    #[test]
    fn band_layout_ignores_thread_count() {
        // the layout is a pure function of n — this is the determinism
        // cornerstone, so pin it explicitly
        assert_eq!(band_ranges(128), band_ranges(128));
        assert_eq!(band_ranges(5).len(), 5);
        assert_eq!(band_ranges(640).len(), 64);
    }

    #[test]
    fn run_tasks_returns_in_submission_order() {
        for threads in [1usize, 2, 4, 7] {
            let tasks: Vec<Task<'_, usize>> = (0..100usize)
                .map(|i| Box::new(move || i * i) as Task<'_, usize>)
                .collect();
            let out = run_tasks(threads, tasks);
            assert_eq!(out, (0..100usize).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_borrows_caller_data() {
        let data: Vec<u64> = (0..1000).collect();
        let bands = band_ranges(data.len());
        let tasks: Vec<Task<'_, u64>> = bands
            .into_iter()
            .map(|r| {
                let slice = &data[r];
                Box::new(move || slice.iter().sum()) as Task<'_, u64>
            })
            .collect();
        let partials = run_tasks(4, tasks);
        assert_eq!(partials.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn run_bands_reduction_is_thread_count_invariant() {
        // a float reduction whose result depends on association order:
        // identical across thread counts because the banding is fixed
        let values: Vec<f32> = (0..1234).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let sum_with = |threads: usize| -> f32 {
            run_bands(threads, values.len(), |r| {
                values[r].iter().copied().sum::<f32>()
            })
            .into_iter()
            .sum()
        };
        let reference = sum_with(1);
        for threads in [2usize, 4, 7, 64] {
            assert_eq!(sum_with(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn nested_run_tasks_completes() {
        let out = run_bands(4, 8, |outer| {
            run_bands(4, 16, |inner| (outer.len() * inner.len()) as u64)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&v| v == 16));
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Task<'_, ()>> = (0..16)
                .map(|i| {
                    Box::new(move || {
                        if i == 7 {
                            panic!("task seven failed");
                        }
                    }) as Task<'_, ()>
                })
                .collect();
            run_tasks(4, tasks);
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task seven failed");
    }

    #[test]
    fn thread_budget_caps_effective_threads() {
        assert_eq!(thread_budget(), None);
        let avail = available_threads();
        assert!(avail >= 1);
        assert_eq!(effective_threads(0), avail);
        assert_eq!(effective_threads(usize::MAX), avail);
        assert_eq!(effective_threads(1), 1);
        with_thread_budget(1, || {
            assert_eq!(thread_budget(), Some(1));
            assert_eq!(effective_threads(0), 1);
            assert_eq!(effective_threads(8), 1);
            with_thread_budget(3, || {
                assert_eq!(effective_threads(0), 3.min(avail));
            });
            assert_eq!(thread_budget(), Some(1));
        });
        assert_eq!(thread_budget(), None);
    }

    #[test]
    fn budget_restored_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_budget(2, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(thread_budget(), None);
    }

    #[test]
    fn explicit_multiworker_pool_runs_parallel_groups() {
        // a dedicated 4-thread pool exercises the cross-thread claim and
        // finished-latch path even on single-core machines, where the
        // global pool has no workers and everything degrades to serial
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 3);
        assert_eq!(pool.max_concurrency(), 4);
        let data: Vec<u64> = (0..10_000).collect();
        for _ in 0..50 {
            let tasks: Vec<Task<'_, u64>> = band_ranges(data.len())
                .into_iter()
                .map(|r| {
                    let slice = &data[r];
                    Box::new(move || slice.iter().sum()) as Task<'_, u64>
                })
                .collect();
            let partials = pool.run_tasks(4, tasks);
            assert_eq!(partials.iter().sum::<u64>(), 49_995_000);
        }
        pool.shutdown();
    }

    #[test]
    fn explicit_pool_shutdown_joins_workers() {
        let pool = WorkerPool::new(3);
        let out = pool.run_tasks(
            3,
            (0..32usize)
                .map(|i| Box::new(move || i + 1) as Task<'_, usize>)
                .collect(),
        );
        assert_eq!(out.iter().sum::<usize>(), 32 * 33 / 2);
        // must return (workers observe the shutdown flag), not hang
        pool.shutdown();
    }

    #[test]
    fn traced_bands_match_untraced_and_record_spans() {
        use slam_trace::{MockClock, SpanLevel};
        let values: Vec<f32> = (0..999).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let plain: f32 = run_bands(4, values.len(), |r| values[r].iter().copied().sum::<f32>())
            .into_iter()
            .sum();
        let tracer = Tracer::with_clock(MockClock::new(1));
        let traced: f32 = run_bands_traced(&tracer, "sum", 4, values.len(), |r| {
            values[r].iter().copied().sum::<f32>()
        })
        .into_iter()
        .sum();
        assert_eq!(
            traced.to_bits(),
            plain.to_bits(),
            "tracing perturbed results"
        );
        let trace = tracer.drain();
        let bands = trace
            .spans()
            .filter(|s| s.level == SpanLevel::Band && s.name == "sum")
            .count();
        assert_eq!(bands, band_ranges(values.len()).len());
        assert_eq!(trace.counter_total("pool.tasks"), bands as u64);
        assert_eq!(trace.counter_total("pool.groups"), 1);
        // disabled tracer takes the zero-overhead path and records nothing
        let off = Tracer::disabled();
        let silent: f32 = run_bands_traced(&off, "sum", 4, values.len(), |r| {
            values[r].iter().copied().sum::<f32>()
        })
        .into_iter()
        .sum();
        assert_eq!(silent.to_bits(), plain.to_bits());
        assert!(off.drain().is_empty());
    }

    #[test]
    fn pool_reuses_persistent_workers() {
        // run many task groups and check no group ever sees a thread
        // outside the fixed pool (workers are created once, not per call)
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<HashSet<String>> = StdMutex::new(HashSet::new());
        for _ in 0..20 {
            let tasks: Vec<Task<'_, ()>> = (0..16)
                .map(|_| {
                    Box::new(|| {
                        let name = std::thread::current()
                            .name()
                            .unwrap_or("submitter")
                            .to_string();
                        seen.lock().unwrap().insert(name);
                    }) as Task<'_, ()>
                })
                .collect();
            run_tasks(available_threads(), tasks);
        }
        let seen = seen.into_inner().unwrap();
        // every participating thread is either the submitter or a
        // persistent named pool worker
        for name in &seen {
            assert!(
                name.starts_with("slam-exec-") || !name.starts_with("slam-"),
                "unexpected thread {name}"
            );
        }
        assert!(seen.len() <= pool().max_concurrency() + 1);
    }
}
