//! An in-tree model checker for the exec-pool protocol (`--cfg loom`).
//!
//! This module plays the role the `loom` crate plays elsewhere: it
//! replaces the pool's sync primitives ([`super::sync`]) with
//! instrumented versions whose every visible operation — atomic access,
//! mutex acquire/release, condvar wait/notify, thread spawn/exit — hands
//! control to a deterministic scheduler, and then explores the space of
//! schedules systematically. It is vendored because this workspace must
//! build in offline environments; the `loom` cfg name is kept so the
//! real crate can later be swapped in behind the same facade.
//!
//! # How exploration works
//!
//! One *schedule* is a sequence of decisions: at every yield point the
//! scheduler picks which runnable model thread executes its next
//! operation. Threads are real OS threads, but exactly one holds the
//! run token at any time, so execution is serial and deterministic;
//! replaying a decision prefix reproduces a run exactly. [`check`]
//! performs a depth-first search over decision sequences: run to
//! completion with first-choice defaults beyond the replayed prefix,
//! then backtrack to the deepest decision with an untried alternative.
//!
//! The search is *exhaustive up to a preemption bound* (CHESS-style
//! iterative context bounding): voluntary switches (a thread blocking or
//! exiting) are always free, while switching away from a still-runnable
//! thread consumes one unit of the preemption budget. With the budget
//! `None` the exploration is fully exhaustive. Empirically almost all
//! protocol bugs manifest within two or three preemptions, and the
//! bounded space stays small enough to enumerate completely —
//! [`Report::schedules`] says how many schedules a run covered, and
//! exceeding [`CheckOptions::max_schedules`] fails the check rather than
//! silently truncating it.
//!
//! # What the model does and does not check
//!
//! Checked: safety and liveness of the *protocol* — each job claimed and
//! run exactly once, `wait_finished` returning only after the last job,
//! panic capture and re-throw, stragglers finding only empty slots,
//! worker shutdown, and absence of deadlock (a state with no runnable
//! thread and unfinished work fails the run, as does any unexpected
//! panic, with the full decision trace printed).
//!
//! Not checked: weak-memory effects. The model executes sequentially
//! consistently and ignores `Ordering` arguments, and it does not inject
//! spurious condvar wakeups (the protocol's wait loops tolerate them,
//! but that robustness is not what is being proven here). The pool's
//! cross-thread data handoff rides entirely on the mutex/condvar
//! acquire-release edges that the model does explore.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Exploration parameters for [`check_with`].
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Maximum number of preemptive context switches per schedule;
    /// `None` explores the full (unbounded) interleaving space.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules: exceeding it fails the check, so
    /// an "exhaustive" result can never silently mean "truncated".
    pub max_schedules: usize,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            preemption_bound: Some(2),
            max_schedules: 500_000,
        }
    }
}

/// Outcome of a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
}

/// Explores `f` under the default [`CheckOptions`]. Panics — failing the
/// enclosing test — if any schedule deadlocks or panics unexpectedly.
pub fn check(f: impl Fn() + Send + Sync + 'static) -> Report {
    check_with(CheckOptions::default(), f)
}

/// Explores `f` under the given options; see the module docs. The
/// closure runs once per schedule as model thread 0 and may create model
/// threads with [`spawn`]; all model threads must terminate for a
/// schedule to complete.
pub fn check_with(opts: CheckOptions, f: impl Fn() + Send + Sync + 'static) -> Report {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        assert!(
            schedules <= opts.max_schedules,
            "model check: schedule budget ({}) exhausted — exploration would be incomplete; \
             shrink the scenario or raise max_schedules",
            opts.max_schedules
        );
        let ctrl = Arc::new(Controller::new(opts.preemption_bound, replay.clone()));
        let outcome = run_schedule(&ctrl, Arc::clone(&f));
        if let Some(message) = outcome.failure {
            panic!(
                "model check failed on schedule {schedules}: {message}\n\
                 decision trace (index into runnable set at each yield): {:?}",
                outcome.trace.iter().map(|d| d.chosen).collect::<Vec<_>>()
            );
        }
        match next_replay(&outcome.trace) {
            Some(next) => replay = next,
            None => return Report { schedules },
        }
    }
}

/// Spawns a model thread running `f`. Must be called from inside a
/// [`check`] closure; the thread participates in the controlled
/// schedule and must terminate for the schedule to complete.
pub fn spawn(f: impl FnOnce() + Send + 'static) {
    let (ctrl, _me) = current();
    let tid = {
        let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads.push(TState::Runnable);
        st.threads.len() - 1
    };
    let ctrl2 = Arc::clone(&ctrl);
    let handle = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || thread_main(ctrl2, tid, f))
        .expect("failed to spawn model thread");
    ctrl.state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .handles
        .push(handle);
    // make the spawn itself a visible operation
    ctrl.yield_point();
}

/// A scheduling decision: which member of the allowed-thread set ran,
/// and how many alternatives existed (for backtracking).
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    allowed: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    Finished,
}

struct CtrlState {
    threads: Vec<TState>,
    /// Which thread holds the run token.
    active: Option<usize>,
    /// Thread scheduled by the previous decision (preemption accounting).
    last: Option<usize>,
    preemptions: usize,
    bound: Option<usize>,
    replay: Vec<usize>,
    trace: Vec<Decision>,
    step: usize,
    /// Per-mutex held flags; condvar/mutex wait sets live in `threads`.
    mutexes: Vec<bool>,
    condvars: usize,
    failure: Option<String>,
    done: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

struct Controller {
    state: StdMutex<CtrlState>,
    cv: StdCondvar,
}

struct Outcome {
    trace: Vec<Decision>,
    failure: Option<String>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Controller>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("model sync primitive used outside a model run (missing model::check)")
    })
}

fn run_schedule(ctrl: &Arc<Controller>, f: Arc<dyn Fn() + Send + Sync>) -> Outcome {
    {
        let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads.push(TState::Runnable); // tid 0: the root closure
        let ctrl2 = Arc::clone(ctrl);
        let handle = std::thread::Builder::new()
            .name("model-0".into())
            .spawn(move || thread_main(ctrl2, 0, move || f()))
            .expect("failed to spawn model root thread");
        st.handles.push(handle);
        ctrl.pick_next(&mut st); // initial decision: start the root
    }
    ctrl.cv.notify_all();
    let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
    while !st.done {
        st = ctrl.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
    let trace = std::mem::take(&mut st.trace);
    let failure = st.failure.take();
    let handles = std::mem::take(&mut st.handles);
    drop(st);
    for h in handles {
        let _ = h.join();
    }
    Outcome { trace, failure }
}

/// Computes the deepest-first next decision prefix, or `None` when the
/// whole (bounded) space has been explored.
fn next_replay(trace: &[Decision]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].allowed {
            let mut replay: Vec<usize> = trace[..i].iter().map(|d| d.chosen).collect();
            replay.push(trace[i].chosen + 1);
            return Some(replay);
        }
    }
    None
}

fn thread_main(ctrl: Arc<Controller>, tid: usize, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctrl), tid)));
    ctrl.wait_for_token(tid);
    let result = catch_unwind(AssertUnwindSafe(f));
    let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
    if let Err(payload) = result {
        if st.failure.is_none() && !st.done {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            st.failure = Some(format!("model thread {tid} panicked: {msg}"));
        }
        // abort the whole run: every waiting thread unwinds and exits
        st.done = true;
    }
    st.threads[tid] = TState::Finished;
    if !st.done {
        ctrl.pick_next(&mut st);
    }
    drop(st);
    ctrl.cv.notify_all();
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Controller {
    fn new(bound: Option<usize>, replay: Vec<usize>) -> Controller {
        Controller {
            state: StdMutex::new(CtrlState {
                threads: Vec::new(),
                active: None,
                last: None,
                preemptions: 0,
                bound,
                replay,
                trace: Vec::new(),
                step: 0,
                mutexes: Vec::new(),
                condvars: 0,
                failure: None,
                done: false,
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Picks the next thread to run. Called with the state lock held by
    /// a thread that is giving up the token (or by the run driver).
    fn pick_next(&self, st: &mut CtrlState) {
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == TState::Runnable)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|&t| t == TState::Finished) {
                st.done = true;
            } else if st.failure.is_none() {
                st.failure = Some(format!(
                    "deadlock: no runnable thread (states: {:?})",
                    st.threads
                ));
                st.done = true;
            } else {
                st.done = true;
            }
            st.active = None;
            return;
        }
        // preemption bounding: once the budget is spent, a still-runnable
        // previous thread must keep running (voluntary switches stay free)
        let allowed: Vec<usize> = match (st.bound, st.last) {
            (Some(b), Some(l)) if st.preemptions >= b && st.threads[l] == TState::Runnable => {
                vec![l]
            }
            _ => runnable,
        };
        let idx = if st.step < st.replay.len() {
            st.replay[st.step].min(allowed.len() - 1)
        } else {
            0
        };
        let chosen = allowed[idx];
        st.trace.push(Decision {
            chosen: idx,
            allowed: allowed.len(),
        });
        st.step += 1;
        if let Some(l) = st.last {
            if l != chosen && st.threads[l] == TState::Runnable {
                st.preemptions += 1;
            }
        }
        st.last = Some(chosen);
        st.active = Some(chosen);
    }

    /// Blocks the calling OS thread until model thread `tid` holds the
    /// run token. Panics (unwinding the model thread out of the run) if
    /// the run was aborted first.
    fn wait_for_token(&self, tid: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.active != Some(tid) && !st.done {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.done && st.active != Some(tid) {
            drop(st);
            panic!("model run aborted");
        }
    }

    /// One scheduling decision: the calling thread stays runnable and
    /// re-runs once (re)chosen. Every visible operation performs this
    /// first, which is what makes op-granularity interleaving complete.
    fn yield_point(&self) {
        let (ctrl, me) = current();
        debug_assert!(std::ptr::eq(self, &*ctrl));
        {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            self.pick_next(&mut st);
        }
        self.cv.notify_all();
        self.wait_for_token(me);
    }

    /// Acquires model mutex `id` for the calling thread, blocking (and
    /// re-contending on wakeup) while it is held. No yield of its own:
    /// callers decide whether the acquire is a fresh visible op.
    fn acquire_mutex(&self, id: usize) {
        let (_, me) = current();
        loop {
            {
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                if !st.mutexes[id] {
                    st.mutexes[id] = true;
                    return;
                }
                st.threads[me] = TState::BlockedMutex(id);
                self.pick_next(&mut st);
            }
            self.cv.notify_all();
            self.wait_for_token(me);
        }
    }

    /// Releases model mutex `id`: waiters become runnable and re-contend
    /// when next scheduled.
    fn release_mutex(&self, id: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.mutexes[id] = false;
        for t in st.threads.iter_mut() {
            if *t == TState::BlockedMutex(id) {
                *t = TState::Runnable;
            }
        }
    }
}

/// The instrumented primitives exported through [`super::sync`] under
/// `--cfg loom`. API-compatible with the `std` backend.
pub(crate) mod sync {
    use super::*;

    /// Model mutex: data lives in a host mutex (uncontended — only the
    /// token holder touches it), blocking semantics live in the model.
    pub(crate) struct Mutex<T> {
        id: usize,
        data: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        pub(crate) fn new(value: T) -> Mutex<T> {
            let (ctrl, _) = current();
            let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.mutexes.push(false);
            let id = st.mutexes.len() - 1;
            drop(st);
            Mutex {
                id,
                data: StdMutex::new(value),
            }
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            let (ctrl, _) = current();
            ctrl.yield_point();
            ctrl.acquire_mutex(self.id);
            MutexGuard {
                mutex: self,
                inner: Some(self.data.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        pub(crate) fn into_inner(self) -> T {
            self.data
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Guard for the model [`Mutex`]; releases on drop.
    pub(crate) struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard data present")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard data present")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.inner = None; // release the host lock first
            let (ctrl, _) = current();
            ctrl.release_mutex(self.mutex.id);
        }
    }

    /// Model condvar: precise wakeups, no spurious ones (see the module
    /// docs for why that is sound here).
    pub(crate) struct Condvar {
        id: usize,
    }

    impl Condvar {
        pub(crate) fn new() -> Condvar {
            let (ctrl, _) = current();
            let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.condvars += 1;
            Condvar {
                id: st.condvars - 1,
            }
        }

        /// Atomically releases the guard's mutex and blocks until
        /// notified, then re-acquires.
        pub(crate) fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let (ctrl, _) = current();
            let mutex = guard.mutex;
            ctrl.yield_point();
            // release + block must be one atomic transition or a wakeup
            // between them would be lost
            guard.inner = None;
            {
                let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.mutexes[mutex.id] = false;
                let (_, me) = current();
                for (t, state) in st.threads.iter_mut().enumerate() {
                    if t != me && *state == TState::BlockedMutex(mutex.id) {
                        *state = TState::Runnable;
                    }
                }
                st.threads[me] = TState::BlockedCv(self.id);
                ctrl.pick_next(&mut st);
            }
            ctrl.cv.notify_all();
            let (_, me) = current();
            ctrl.wait_for_token(me);
            std::mem::forget(guard); // its Drop would double-release
            ctrl.acquire_mutex(mutex.id);
            MutexGuard {
                mutex,
                inner: Some(mutex.data.lock().unwrap_or_else(PoisonError::into_inner)),
            }
        }

        /// Wakes every thread waiting on this condvar; each re-contends
        /// for its mutex when next scheduled.
        pub(crate) fn notify_all(&self) {
            let (ctrl, _) = current();
            ctrl.yield_point();
            let mut st = ctrl.state.lock().unwrap_or_else(PoisonError::into_inner);
            for t in st.threads.iter_mut() {
                if *t == TState::BlockedCv(self.id) {
                    *t = TState::Runnable;
                }
            }
        }
    }

    /// Model atomic: a plain value behind the run token; every access is
    /// a scheduling decision, orderings are ignored (the model is
    /// sequentially consistent).
    pub(crate) struct AtomicUsize {
        value: StdMutex<usize>,
    }

    impl AtomicUsize {
        pub(crate) fn new(value: usize) -> AtomicUsize {
            AtomicUsize {
                value: StdMutex::new(value),
            }
        }

        pub(crate) fn load(&self, _order: Ordering) -> usize {
            let (ctrl, _) = current();
            ctrl.yield_point();
            *self.value.lock().unwrap_or_else(PoisonError::into_inner)
        }

        pub(crate) fn fetch_add(&self, add: usize, _order: Ordering) -> usize {
            let (ctrl, _) = current();
            ctrl.yield_point();
            let mut v = self.value.lock().unwrap_or_else(PoisonError::into_inner);
            let old = *v;
            *v += add;
            old
        }
    }
}

// `model` is test infrastructure compiled only under `--cfg loom`: its
// failure-reporting mechanism IS the panic, like any assertion framework.
// (The waivers above each panic site would drown the file; the policy
// exemption lives in xtask's `walk::classify` instead.)
