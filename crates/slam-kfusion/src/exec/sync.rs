//! Synchronisation facade: the exec pool's primitives, swappable between
//! `std` and the loom model checker.
//!
//! The pool's protocol code ([`super::TaskGroup`], [`super::PoolShared`])
//! is written exclusively against this module, so the *same* source runs
//! under two backends:
//!
//! * **default** — thin wrappers over `std::sync`. The wrappers recover
//!   from mutex poisoning via [`std::sync::PoisonError::into_inner`]
//!   instead of panicking: every mutex in the pool guards plain state
//!   (job slots, counters, latches) whose invariants are maintained
//!   before any user code can panic, and task panics are already caught
//!   and re-thrown by the group protocol, so propagating poison would
//!   only turn one reported panic into a cascade.
//! * **`--cfg loom`** — the in-tree model checker's instrumented
//!   primitives ([`super::model::sync`]), which hand every visible
//!   operation to a controlled scheduler so `tests/loom_exec.rs` can
//!   exhaustively explore interleavings of the pool protocol. The `loom`
//!   cfg name is kept so the real `loom` crate can be swapped in as a
//!   drop-in backend where its dependency is available; the vendored
//!   checker exists because this workspace builds in offline
//!   environments.
//!
//! Only the operations the pool actually uses are exposed; keeping the
//! surface minimal is what keeps the model sound and the swap honest.

#[cfg(loom)]
pub(crate) use super::model::sync::{AtomicUsize, Condvar, Mutex};

/// Memory orderings are forwarded to `std` untouched; the model backend
/// executes sequentially consistently and ignores them (documented in
/// [`super::model`]).
pub(crate) use std::sync::atomic::Ordering;

#[cfg(not(loom))]
pub(crate) use std_impl::{AtomicUsize, Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
mod std_impl {
    use std::sync::atomic::Ordering;
    use std::sync::PoisonError;

    /// Poison-recovering wrapper over [`std::sync::Mutex`].
    #[derive(Debug, Default)]
    pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard returned by [`Mutex::lock`].
    pub(crate) type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub(crate) fn new(value: T) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(value))
        }

        /// Locks, recovering the guard if a previous holder panicked.
        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consumes the mutex, recovering the value if poisoned.
        pub(crate) fn into_inner(self) -> T {
            self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Wrapper over [`std::sync::Condvar`] pairing with [`Mutex`].
    #[derive(Debug, Default)]
    pub(crate) struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub(crate) fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        /// Waits on the condition, recovering the guard on poison.
        pub(crate) fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        pub(crate) fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Direct re-export shim over [`std::sync::atomic::AtomicUsize`].
    #[derive(Debug, Default)]
    pub(crate) struct AtomicUsize(std::sync::atomic::AtomicUsize);

    impl AtomicUsize {
        pub(crate) fn new(value: usize) -> AtomicUsize {
            AtomicUsize(std::sync::atomic::AtomicUsize::new(value))
        }

        pub(crate) fn load(&self, order: Ordering) -> usize {
            self.0.load(order)
        }

        pub(crate) fn fetch_add(&self, value: usize, order: Ordering) -> usize {
            self.0.fetch_add(value, order)
        }
    }
}
