//! Surface prediction: raycasting the TSDF volume into vertex and normal
//! maps.
//!
//! The raycast output is the reference "model" the ICP tracker aligns each
//! new frame against; its quality (and cost) depends on the volume
//! resolution and `mu`, which is one of the key levers in the paper's
//! performance–accuracy trade-off.

use crate::exec;
use crate::image::{Image2D, NormalMap, VertexMap};
use crate::volume::Volume;
use crate::workload::Workload;
use slam_math::camera::PinholeCamera;
use slam_math::{Se3, Vec3};
use slam_trace::Tracer;

/// The raycast model prediction: per-pixel world-frame surface points and
/// normals. Invalid pixels hold zero vectors (tested via
/// [`RaycastResult::is_valid`]).
#[derive(Debug, Clone)]
pub struct RaycastResult {
    /// World-frame surface points.
    pub vertices: VertexMap,
    /// World-frame outward surface normals (unit length where valid).
    pub normals: NormalMap,
    /// The camera-to-world pose the rays were cast from.
    pub pose: Se3,
}

impl RaycastResult {
    /// True when pixel `(x, y)` found a surface.
    pub fn is_valid(&self, x: usize, y: usize) -> bool {
        self.normals.get(x, y).norm_squared() > 0.25
    }

    /// Fraction of pixels that found a surface.
    pub fn valid_fraction(&self) -> f32 {
        if self.normals.is_empty() {
            return 0.0;
        }
        let valid = self
            .normals
            .as_slice()
            .iter()
            .filter(|n| n.norm_squared() > 0.25)
            .count();
        valid as f32 / self.normals.len() as f32
    }
}

/// Raycasting parameters.
#[derive(Debug, Clone, Copy)]
pub struct RaycastParams {
    /// Near clipping distance in metres.
    pub near: f32,
    /// Far clipping distance in metres.
    pub far: f32,
    /// Step length as a fraction of `mu` while marching in free space.
    pub step_fraction: f32,
    /// TSDF truncation distance (metres), for step sizing.
    pub mu: f32,
}

impl Default for RaycastParams {
    fn default() -> RaycastParams {
        RaycastParams {
            near: 0.3,
            far: 6.0,
            step_fraction: 0.5,
            mu: 0.1,
        }
    }
}

/// Casts one ray through the volume. Returns the world-space hit point,
/// or `None` if the ray leaves the far plane or never sees observed space
/// with a zero crossing. Also returns the number of steps marched (for
/// workload accounting) via the `steps` out-counter.
fn march_ray<V: Volume + ?Sized>(
    volume: &V,
    origin: Vec3,
    dir: Vec3,
    params: &RaycastParams,
    steps: &mut u32,
) -> Option<Vec3> {
    // clip the ray against the volume's AABB so misses cost nothing and
    // hits only march the in-volume segment (as the original KinectFusion
    // raycaster does)
    let (t_enter, t_exit) = ray_aabb(origin, dir, volume.size())?;
    let step = (params.mu * params.step_fraction).max(volume.voxel_size() * 0.5);
    let mut t = params.near.max(t_enter);
    let t_far = params.far.min(t_exit);
    let mut prev: Option<(f32, f32)> = None; // (t, tsdf)
    while t < t_far {
        *steps += 1;
        let p = origin + dir * t;
        match volume.sample(p) {
            Some(v) => {
                if let Some((pt, pv)) = prev {
                    if pv > 0.0 && v <= 0.0 {
                        // zero crossing between pt and t: linear interpolation
                        let tt = pt + (t - pt) * pv / (pv - v);
                        return Some(origin + dir * tt);
                    }
                }
                // started inside the surface: no visible front face
                if prev.is_none() && v <= 0.0 {
                    return None;
                }
                prev = Some((t, v));
                // adaptive step: far from the surface we can stride at
                // almost the truncation distance
                t += if v > 0.8 { params.mu * 0.8 } else { step };
            }
            None => {
                prev = None;
                // a sparse backend can certify a longer leap through
                // unallocated bricks; the dense backend returns 0.0 and
                // falls back to the plain step
                t += volume.free_space_skip(p, dir).max(step);
            }
        }
    }
    None
}

/// Intersects a ray with the volume cube `[0, size]³`; returns the
/// in-volume parameter interval, or `None` when the ray misses entirely.
fn ray_aabb(origin: Vec3, dir: Vec3, size: f32) -> Option<(f32, f32)> {
    let mut t_enter = 0.0f32;
    let mut t_exit = f32::INFINITY;
    for axis in 0..3 {
        let o = origin[axis];
        let d = dir[axis];
        if d.abs() < 1e-9 {
            if o < 0.0 || o > size {
                return None;
            }
            continue;
        }
        let t0 = (0.0 - o) / d;
        let t1 = (size - o) / d;
        let (lo, hi) = if t0 < t1 { (t0, t1) } else { (t1, t0) };
        t_enter = t_enter.max(lo);
        t_exit = t_exit.min(hi);
        if t_enter > t_exit {
            return None;
        }
    }
    Some((t_enter, t_exit))
}

/// Raycasts the volume from `pose`, producing the model maps for ICP.
/// Uses all available threads (see [`raycast_with_threads`]). Works
/// over any [`Volume`] backend.
pub fn raycast<V: Volume + Sync + ?Sized>(
    volume: &V,
    camera: &PinholeCamera,
    pose: &Se3,
    params: &RaycastParams,
) -> (RaycastResult, Workload) {
    raycast_with_threads(volume, camera, pose, params, 0)
}

/// Like [`raycast`] with an explicit thread count (`0` = all
/// available). Runs on the shared [`exec`] worker pool over fixed row
/// bands; every pixel is written exactly once and the band layout
/// depends only on the image height, so the output is bit-identical
/// for every thread count.
pub fn raycast_with_threads<V: Volume + Sync + ?Sized>(
    volume: &V,
    camera: &PinholeCamera,
    pose: &Se3,
    params: &RaycastParams,
    threads: usize,
) -> (RaycastResult, Workload) {
    raycast_traced(volume, camera, pose, params, threads, Tracer::off())
}

/// Like [`raycast_with_threads`], recording a `raycast` kernel span plus
/// per-band spans into `tracer`. Tracing never changes the model maps.
pub fn raycast_traced<V: Volume + Sync + ?Sized>(
    volume: &V,
    camera: &PinholeCamera,
    pose: &Se3,
    params: &RaycastParams,
    threads: usize,
    tracer: &Tracer,
) -> (RaycastResult, Workload) {
    let _kernel = tracer.kernel_span("raycast");
    let (w, h) = (camera.width, camera.height);
    let mut vertices = Image2D::new(w, h, Vec3::ZERO);
    let mut normals = Image2D::new(w, h, Vec3::ZERO);
    let origin = pose.translation();
    let threads = exec::effective_threads(threads);
    let mut tasks: Vec<exec::Task<'_, u64>> = Vec::new();
    {
        let mut v_rest: &mut [Vec3] = vertices.as_mut_slice();
        let mut n_rest: &mut [Vec3] = normals.as_mut_slice();
        for band in exec::band_ranges(h) {
            let (v_band, v_next) = v_rest.split_at_mut(band.len() * w);
            let (n_band, n_next) = n_rest.split_at_mut(band.len() * w);
            v_rest = v_next;
            n_rest = n_next;
            let y0 = band.start;
            tasks.push(Box::new(move || {
                let mut band_steps: u64 = 0;
                for (i, (v_out, n_out)) in v_band.iter_mut().zip(n_band.iter_mut()).enumerate() {
                    let x = i % w;
                    let y = y0 + i / w;
                    let dir = pose.transform_vector(camera.ray_direction(x as f32, y as f32));
                    let mut steps = 0u32;
                    if let Some(hit) = march_ray(volume, origin, dir, params, &mut steps) {
                        if let Some(g) = volume.gradient(hit) {
                            if let Some(n) = g.normalized() {
                                *v_out = hit;
                                *n_out = n;
                            }
                        }
                    }
                    band_steps += u64::from(steps);
                }
                band_steps
            }));
        }
    }
    let total_steps: u64 = exec::sum_tasks_traced(tracer, "raycast", threads, tasks);
    // per step: one trilinear sample (~30 ops, 8 voxel reads) — this is the
    // dominant cost; plus per-pixel setup and the gradient at the hit
    let ops = total_steps as f64 * 30.0 + (w * h) as f64 * 20.0;
    let bytes = total_steps as f64 * 8.0 * 4.0 + (w * h) as f64 * 24.0;
    (
        RaycastResult {
            vertices,
            normals,
            pose: *pose,
        },
        Workload::new(ops, bytes),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image2D;
    use crate::tsdf::TsdfVolume;
    use crate::tsdf_sparse::SparseTsdfVolume;

    /// Builds a volume with a wall at z = 1 m integrated from the pose the
    /// test raycasts from.
    fn wall_volume() -> (TsdfVolume, PinholeCamera, Se3) {
        let cam = PinholeCamera::tiny();
        let mut vol = TsdfVolume::new(64, 2.0);
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        for _ in 0..3 {
            vol.integrate(&depth, &cam, &pose, 0.15, 100.0);
        }
        (vol, cam, pose)
    }

    fn params() -> RaycastParams {
        RaycastParams {
            near: 0.3,
            far: 3.0,
            step_fraction: 0.5,
            mu: 0.15,
        }
    }

    #[test]
    fn raycast_recovers_wall_depth() {
        let (vol, cam, pose) = wall_volume();
        let (result, work) = raycast(&vol, &cam, &pose, &params());
        assert!(work.ops > 0.0);
        let centre = result.vertices.get(cam.width / 2, cam.height / 2);
        // wall surface is the plane z = 1 (world)
        assert!((centre.z - 1.0).abs() < 0.03, "hit at z={}", centre.z);
        assert!(result.is_valid(cam.width / 2, cam.height / 2));
    }

    #[test]
    fn raycast_normals_face_camera() {
        let (vol, cam, pose) = wall_volume();
        let (result, _) = raycast(&vol, &cam, &pose, &params());
        let n = result.normals.get(cam.width / 2, cam.height / 2);
        // outward normal of the wall faces -z (towards the camera);
        // tsdf gradient points from inside (-) to outside (+) = towards camera
        assert!(n.z < -0.9, "normal {n}");
        assert!((n.norm() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn raycast_mostly_valid_for_wall() {
        let (vol, cam, pose) = wall_volume();
        let (result, _) = raycast(&vol, &cam, &pose, &params());
        assert!(
            result.valid_fraction() > 0.7,
            "valid {}",
            result.valid_fraction()
        );
    }

    #[test]
    fn empty_volume_yields_no_hits() {
        let cam = PinholeCamera::tiny();
        let vol = TsdfVolume::new(32, 2.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let (result, _) = raycast(&vol, &cam, &pose, &params());
        assert_eq!(result.valid_fraction(), 0.0);
    }

    #[test]
    fn raycast_from_shifted_pose_sees_consistent_geometry() {
        let (vol, cam, pose) = wall_volume();
        // move 10 cm towards the wall: predicted depth shrinks by 10 cm
        let closer = Se3::from_translation(Vec3::new(1.0, 1.0, 0.1));
        let (result, _) = raycast(&vol, &cam, &closer, &params());
        let centre = result.vertices.get(cam.width / 2, cam.height / 2);
        assert!(
            (centre.z - 1.0).abs() < 0.03,
            "world-space hit stays at the wall"
        );
        let _ = pose;
    }

    #[test]
    fn raycast_is_thread_count_invariant() {
        let (vol, cam, pose) = wall_volume();
        let (reference, ref_work) = raycast_with_threads(&vol, &cam, &pose, &params(), 1);
        for threads in [2usize, 4, 7] {
            let (result, work) = raycast_with_threads(&vol, &cam, &pose, &params(), threads);
            assert_eq!(
                result.vertices, reference.vertices,
                "{threads} threads diverged"
            );
            assert_eq!(
                result.normals, reference.normals,
                "{threads} threads diverged"
            );
            assert_eq!(work.ops.to_bits(), ref_work.ops.to_bits());
        }
    }

    #[test]
    fn sparse_backend_recovers_wall_and_skips_free_space() {
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut dense = TsdfVolume::new(64, 2.0);
        let mut sparse = SparseTsdfVolume::new(64, 2.0);
        for _ in 0..3 {
            dense.integrate(&depth, &cam, &pose, 0.15, 100.0);
            sparse.integrate(&depth, &cam, &pose, 0.15, 100.0);
        }
        let (dr, dw) = raycast(&dense, &cam, &pose, &params());
        let (sr, sw) = raycast(&sparse, &cam, &pose, &params());
        assert!(sr.valid_fraction() > 0.7, "valid {}", sr.valid_fraction());
        // both backends must land on the same wall
        let dc = dr.vertices.get(cam.width / 2, cam.height / 2);
        let sc = sr.vertices.get(cam.width / 2, cam.height / 2);
        assert!(
            (dc.z - sc.z).abs() < 0.02,
            "dense z={} sparse z={}",
            dc.z,
            sc.z
        );
        // the sparse march leaps unallocated bricks, so it takes fewer
        // steps (its workload counts the actual samples)
        assert!(
            sw.ops < dw.ops,
            "sparse raycast ({}) not cheaper than dense ({})",
            sw.ops,
            dw.ops
        );
    }

    #[test]
    fn sparse_raycast_is_thread_count_invariant() {
        let cam = PinholeCamera::tiny();
        let depth = Image2D::new(cam.width, cam.height, 1.0);
        let pose = Se3::from_translation(Vec3::new(1.0, 1.0, 0.0));
        let mut vol = SparseTsdfVolume::new(64, 2.0);
        for _ in 0..3 {
            vol.integrate(&depth, &cam, &pose, 0.15, 100.0);
        }
        let (reference, ref_work) = raycast_with_threads(&vol, &cam, &pose, &params(), 1);
        for threads in [2usize, 4, 7] {
            let (result, work) = raycast_with_threads(&vol, &cam, &pose, &params(), threads);
            assert_eq!(
                result.vertices, reference.vertices,
                "{threads} threads diverged"
            );
            assert_eq!(
                result.normals, reference.normals,
                "{threads} threads diverged"
            );
            assert_eq!(work.ops.to_bits(), ref_work.ops.to_bits());
        }
    }

    #[test]
    fn ray_aabb_intersections() {
        // ray through the middle of a 2m cube
        let (t0, t1) = ray_aabb(Vec3::new(1.0, 1.0, -1.0), Vec3::Z, 2.0).unwrap();
        assert!((t0 - 1.0).abs() < 1e-5);
        assert!((t1 - 3.0).abs() < 1e-5);
        // ray starting inside
        let (t0, t1) = ray_aabb(Vec3::new(1.0, 1.0, 1.0), Vec3::Z, 2.0).unwrap();
        assert_eq!(t0, 0.0);
        assert!((t1 - 1.0).abs() < 1e-5);
        // miss
        assert!(ray_aabb(Vec3::new(5.0, 5.0, -1.0), Vec3::Z, 2.0).is_none());
        // axis-parallel ray outside the slab
        assert!(ray_aabb(Vec3::new(-1.0, 1.0, 1.0), Vec3::Z, 2.0).is_none());
    }

    #[test]
    fn rays_missing_volume_are_cheap() {
        let cam = PinholeCamera::tiny();
        let vol = TsdfVolume::new(32, 2.0);
        // camera far outside looking away from the volume
        let pose = Se3::from_translation(Vec3::new(10.0, 10.0, 10.0));
        let (result, work) = raycast(&vol, &cam, &pose, &params());
        assert_eq!(result.valid_fraction(), 0.0);
        // only per-pixel setup cost, no marching
        assert!(work.ops < (cam.pixel_count() as f64) * 25.0);
    }

    #[test]
    fn workload_counts_steps() {
        let (vol, cam, pose) = wall_volume();
        let near = raycast(&vol, &cam, &pose, &params()).1;
        let far_params = RaycastParams {
            far: 1.05,
            ..params()
        };
        let short = raycast(&vol, &cam, &pose, &far_params).1;
        assert!(
            near.ops >= short.ops,
            "longer march must cost at least as much"
        );
    }
}
