//! The per-frame KinectFusion pipeline orchestration.

use crate::config::{KFusionConfig, TrackingReference};
use crate::icp::{track_traced, TrackLevel, TrackResult};
use crate::image::{DepthImage, Image2D};
use crate::preprocess::{
    bilateral_filter_traced, depth2vertex, half_sample, mm2meters, vertex2normal,
};
use crate::raycast::{raycast_traced, RaycastParams, RaycastResult};
use crate::volume::VolumeStorage;
use crate::workload::{FrameWorkload, Kernel, Workload};
use slam_math::camera::PinholeCamera;
use slam_math::Se3;
use slam_trace::{Clock, Tracer, WallClock};
use std::sync::Arc;

/// The shared measurement front-end of every depth-based algorithm:
/// millimetre → metre conversion (with `compute_size_ratio`
/// down-sampling) followed by the optional bilateral filter. Records the
/// per-kernel workload into `fw`.
pub(crate) fn preprocess_depth(
    depth_mm: &[u16],
    sensor_camera: &PinholeCamera,
    config: &KFusionConfig,
    fw: &mut FrameWorkload,
    tracer: &Tracer,
) -> DepthImage {
    let (raw_m, work) = {
        let _k = tracer.kernel_span("mm2meters");
        mm2meters(
            depth_mm,
            sensor_camera.width,
            sensor_camera.height,
            config.compute_size_ratio,
        )
    };
    fw.record(Kernel::Mm2Meters, work);
    if config.bilateral_filter {
        let (f, work) = bilateral_filter_traced(&raw_m, 2, 1.5, 0.1, config.threads, tracer);
        fw.record(Kernel::BilateralFilter, work);
        f
    } else {
        raw_m
    }
}

/// Builds the three-level tracking pyramid (half-sampled depths plus
/// vertex/normal maps) from the filtered depth. Shared by every
/// algorithm that tracks with the pyramidal ICP.
pub(crate) fn build_pyramid_levels(
    filtered: &DepthImage,
    pyramid_cameras: &[PinholeCamera; 3],
    fw: &mut FrameWorkload,
    tracer: &Tracer,
) -> Vec<TrackLevel> {
    let mut depths = Vec::with_capacity(3);
    depths.push(filtered.clone());
    for level in 1..3 {
        let (half, work) = {
            let _k = tracer.kernel_span("halfsample");
            half_sample(&depths[level - 1], 0.1)
        };
        fw.record(Kernel::HalfSample, work);
        depths.push(half);
    }
    depths
        .into_iter()
        .enumerate()
        .map(|(level, depth)| {
            let camera = pyramid_cameras[level];
            let (vertices, vw) = {
                let _k = tracer.kernel_span("depth2vertex");
                depth2vertex(&depth, &camera)
            };
            fw.record(Kernel::Depth2Vertex, vw);
            let (normals, nw) = {
                let _k = tracer.kernel_span("vertex2normal");
                vertex2normal(&vertices)
            };
            fw.record(Kernel::Vertex2Normal, nw);
            TrackLevel {
                vertices,
                normals,
                camera,
            }
        })
        .collect()
}

/// Lifts a level's camera-frame measured maps into world coordinates —
/// the "previous frame as tracking reference" representation shared by
/// the frame-to-frame tracking modes.
pub(crate) fn lift_to_world(level: &TrackLevel, pose: &Se3) -> RaycastResult {
    let mut vertices = Image2D::new(
        level.camera.width,
        level.camera.height,
        slam_math::Vec3::ZERO,
    );
    let mut normals = Image2D::new(
        level.camera.width,
        level.camera.height,
        slam_math::Vec3::ZERO,
    );
    for y in 0..level.camera.height {
        for x in 0..level.camera.width {
            let v = level.vertices.get(x, y);
            let n = level.normals.get(x, y);
            // the finite check keeps an Inf vertex (NaN already fails the
            // `>` comparisons) out of the world-frame reference maps
            if v.z.is_finite()
                && v.z > 0.0
                && n.norm_squared().is_finite()
                && n.norm_squared() > 0.25
            {
                vertices.set(x, y, pose.transform_point(v));
                normals.set(x, y, pose.transform_vector(n));
            }
        }
    }
    RaycastResult {
        vertices,
        normals,
        pose: *pose,
    }
}

/// Everything the pipeline produced for one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Frame index (0-based).
    pub frame_index: usize,
    /// The estimated camera-to-world pose after this frame.
    pub pose: Se3,
    /// Whether the frame is considered successfully tracked. Frame 0 and
    /// frames skipped by `tracking_rate` count as tracked.
    pub tracked: bool,
    /// RMS point-to-plane residual of the final ICP iteration (metres);
    /// `0.0` when tracking did not run.
    pub rms_residual: f64,
    /// Fraction of valid pixels with ICP associations; `0.0` when
    /// tracking did not run.
    pub matched_fraction: f64,
    /// ICP iterations executed this frame.
    pub icp_iterations: usize,
    /// Whether the frame was integrated into the volume.
    pub integrated: bool,
    /// Whether the model was re-raycast after this frame.
    pub raycasted: bool,
    /// Measured per-kernel workload of this frame.
    pub workload: FrameWorkload,
    /// Wall-clock time this frame took on the host, in seconds. (The
    /// *modelled* device time comes from `slam-power` applied to
    /// `workload`.)
    pub wall_time: f64,
}

/// The KinectFusion dense SLAM system.
///
/// Feed depth frames (millimetres, row-major, `0` = hole) via
/// [`KinectFusion::process_frame`]; read back poses and the TSDF model.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct KinectFusion {
    config: KFusionConfig,
    sensor_camera: PinholeCamera,
    compute_camera: PinholeCamera,
    pyramid_cameras: [PinholeCamera; 3],
    volume: VolumeStorage,
    pose: Se3,
    model: Option<RaycastResult>,
    /// Previous frame's measured maps in world coordinates, kept when
    /// frame-to-frame tracking is selected.
    prev_frame_maps: Option<RaycastResult>,
    frame_index: usize,
    lost_frames: usize,
    /// Time source for [`FrameResult::wall_time`]. Defaults to
    /// [`WallClock`]; tests inject a
    /// [`MockClock`](slam_trace::MockClock) to pin timing plumbing
    /// deterministically.
    clock: Arc<dyn Clock>,
}

impl KinectFusion {
    /// Creates a pipeline for a sensor with the given intrinsics, starting
    /// at `initial_pose` (camera-to-world, world = the `[0, volume_size]³`
    /// volume frame).
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`KFusionConfig::validate`].
    pub fn new(
        config: KFusionConfig,
        sensor_camera: PinholeCamera,
        initial_pose: Se3,
    ) -> KinectFusion {
        let validation = config.validate();
        assert!(
            validation.is_ok(),
            "invalid KinectFusion configuration: {validation:?}"
        );
        let compute_camera = sensor_camera.scaled_down(config.compute_size_ratio);
        let pyramid_cameras = [
            compute_camera,
            compute_camera.scaled_down(2),
            compute_camera.scaled_down(4),
        ];
        let volume = VolumeStorage::new(
            config.volume_backend,
            config.volume_resolution,
            config.volume_size,
        );
        KinectFusion {
            config,
            sensor_camera,
            compute_camera,
            pyramid_cameras,
            volume,
            pose: initial_pose,
            model: None,
            prev_frame_maps: None,
            frame_index: 0,
            lost_frames: 0,
            clock: Arc::new(WallClock::new()),
        }
    }

    /// Replaces the time source behind [`FrameResult::wall_time`]
    /// (builder style). The default is [`WallClock`]; inject a
    /// [`MockClock`](slam_trace::MockClock) to make timing
    /// deterministic in tests. The clock never influences the pipeline's
    /// outputs — only the reported `wall_time`.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> KinectFusion {
        self.clock = clock;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &KFusionConfig {
        &self.config
    }

    /// The sensor intrinsics this pipeline was built for.
    pub fn sensor_camera(&self) -> &PinholeCamera {
        &self.sensor_camera
    }

    /// The intrinsics at compute resolution (after `compute_size_ratio`).
    pub fn compute_camera(&self) -> &PinholeCamera {
        &self.compute_camera
    }

    /// The current pose estimate (camera-to-world).
    pub fn current_pose(&self) -> Se3 {
        self.pose
    }

    /// The TSDF model built so far, in whichever backend
    /// [`crate::volume::VolumeBackend`] the configuration selected.
    pub fn volume(&self) -> &VolumeStorage {
        &self.volume
    }

    /// Number of frames processed so far.
    pub fn frames_processed(&self) -> usize {
        self.frame_index
    }

    /// Number of frames on which tracking failed.
    pub fn lost_frames(&self) -> usize {
        self.lost_frames
    }

    /// The most recent raycast model prediction, if any.
    pub fn model(&self) -> Option<&RaycastResult> {
        self.model.as_ref()
    }

    fn raycast_params(&self) -> RaycastParams {
        RaycastParams {
            near: 0.2,
            far: self.config.volume_size * 1.8,
            step_fraction: 0.5,
            mu: self.config.mu,
        }
    }

    /// Processes one depth frame and advances the pipeline state.
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor resolution.
    pub fn process_frame(&mut self, depth_mm: &[u16]) -> FrameResult {
        self.process_frame_traced(depth_mm, Tracer::off())
    }

    /// Like [`KinectFusion::process_frame`], recording a `frame` span
    /// with the full kernel/band hierarchy and the pipeline counters
    /// into `tracer`. Tracing never changes the pipeline's outputs — a
    /// traced run is bit-identical to an untraced one (the determinism
    /// suite asserts this).
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor resolution.
    pub fn process_frame_traced(&mut self, depth_mm: &[u16], tracer: &Tracer) -> FrameResult {
        assert_eq!(
            depth_mm.len(),
            self.sensor_camera.pixel_count(),
            "depth buffer does not match sensor resolution"
        );
        let _frame = tracer.frame_span("frame");
        let start_ns = self.clock.now_ns();
        let mut fw = FrameWorkload::new();
        let filtered =
            preprocess_depth(depth_mm, &self.sensor_camera, &self.config, &mut fw, tracer);
        self.advance_traced(filtered, fw, start_ns, tracer)
    }

    /// Processes one *metre-unit* depth map already at compute resolution
    /// (after `compute_size_ratio`), bypassing the millimetre wire
    /// format. Real float-depth datasets — and hostile sensor inputs
    /// carrying NaN/Inf pixels, which `u16` millimetres cannot encode —
    /// enter the pipeline here; every downstream kernel treats a
    /// non-finite sample exactly like a hole (`0`), so such frames
    /// degrade coverage but never poison the model or the trajectory.
    ///
    /// # Panics
    ///
    /// Panics when `depth_m` does not match the compute resolution.
    pub fn process_depth_frame(&mut self, depth_m: &DepthImage) -> FrameResult {
        self.process_depth_frame_traced(depth_m, Tracer::off())
    }

    /// Like [`KinectFusion::process_depth_frame`], recording the kernel
    /// hierarchy into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics when `depth_m` does not match the compute resolution.
    pub fn process_depth_frame_traced(
        &mut self,
        depth_m: &DepthImage,
        tracer: &Tracer,
    ) -> FrameResult {
        assert_eq!(
            (depth_m.width(), depth_m.height()),
            (self.compute_camera.width, self.compute_camera.height),
            "depth map does not match compute resolution"
        );
        let _frame = tracer.frame_span("frame");
        let start_ns = self.clock.now_ns();
        let mut fw = FrameWorkload::new();
        let filtered = if self.config.bilateral_filter {
            let (f, work) =
                bilateral_filter_traced(depth_m, 2, 1.5, 0.1, self.config.threads, tracer);
            fw.record(Kernel::BilateralFilter, work);
            f
        } else {
            depth_m.clone()
        };
        self.advance_traced(filtered, fw, start_ns, tracer)
    }

    /// The shared back half of a frame step: pyramid, tracking,
    /// integration and model prediction over an already-filtered
    /// metre-unit depth map at compute resolution.
    fn advance_traced(
        &mut self,
        filtered: DepthImage,
        mut fw: FrameWorkload,
        start_ns: u64,
        tracer: &Tracer,
    ) -> FrameResult {
        let levels = build_pyramid_levels(&filtered, &self.pyramid_cameras, &mut fw, tracer);

        // --- tracking ------------------------------------------------------
        let is_first = self.frame_index == 0;
        let should_track = !is_first && self.frame_index.is_multiple_of(self.config.tracking_rate);
        let mut tracked = true;
        let mut track_result: Option<TrackResult> = None;
        if should_track {
            let reference = match self.config.tracking_reference {
                TrackingReference::Model => self.model.as_ref(),
                TrackingReference::PreviousFrame => self.prev_frame_maps.as_ref(),
            };
            if let Some(model) = reference {
                let (result, track_work, solve_work) = track_traced(
                    &levels,
                    model,
                    &self.compute_camera,
                    &self.pose,
                    &self.config,
                    tracer,
                );
                fw.record(Kernel::Track, track_work);
                fw.record(Kernel::Solve, solve_work);
                tracked = result.tracked;
                if result.tracked {
                    self.pose = result.pose;
                } else {
                    self.lost_frames += 1;
                }
                track_result = Some(result);
            } else {
                tracked = false;
                self.lost_frames += 1;
            }
        }

        // --- integration ---------------------------------------------------
        let should_integrate = (tracked || self.frame_index < 4)
            && self
                .frame_index
                .is_multiple_of(self.config.integration_rate);
        if should_integrate {
            // dispatch on the backend once per frame so the hot per-voxel
            // loops run statically typed, not through the enum
            let work = match &mut self.volume {
                VolumeStorage::Dense(v) => v.integrate_traced(
                    &filtered,
                    &self.compute_camera,
                    &self.pose,
                    self.config.mu,
                    self.config.max_weight,
                    self.config.threads,
                    tracer,
                ),
                VolumeStorage::Sparse(v) => v.integrate_traced(
                    &filtered,
                    &self.compute_camera,
                    &self.pose,
                    self.config.mu,
                    self.config.max_weight,
                    self.config.threads,
                    tracer,
                ),
            };
            fw.record(Kernel::Integrate, work);
        }

        // --- model prediction ----------------------------------------------
        let should_raycast =
            self.frame_index.is_multiple_of(self.config.raycast_rate) || self.model.is_none();
        if should_raycast {
            let params = self.raycast_params();
            let (model, work) = match &self.volume {
                VolumeStorage::Dense(v) => raycast_traced(
                    v,
                    &self.compute_camera,
                    &self.pose,
                    &params,
                    self.config.threads,
                    tracer,
                ),
                VolumeStorage::Sparse(v) => raycast_traced(
                    v,
                    &self.compute_camera,
                    &self.pose,
                    &params,
                    self.config.threads,
                    tracer,
                ),
            };
            fw.record(Kernel::Raycast, work);
            self.model = Some(model);
        }

        // keep the previous-frame reference when frame-to-frame tracking
        // is selected: the finest level's maps, lifted to world coordinates
        if self.config.tracking_reference == TrackingReference::PreviousFrame {
            self.prev_frame_maps = Some(lift_to_world(&levels[0], &self.pose));
        }

        let result = FrameResult {
            frame_index: self.frame_index,
            pose: self.pose,
            tracked,
            rms_residual: track_result.as_ref().map_or(0.0, |r| r.rms_residual),
            matched_fraction: track_result.as_ref().map_or(0.0, |r| r.matched_fraction),
            icp_iterations: track_result.as_ref().map_or(0, |r| r.iterations),
            integrated: should_integrate,
            raycasted: should_raycast,
            workload: fw,
            wall_time: self.clock.now_ns().saturating_sub(start_ns) as f64 / 1e9,
        };
        self.frame_index += 1;
        result
    }

    /// Convenience: total workload of a no-op query frame is zero; this
    /// returns the zero workload for symmetry in reports.
    pub fn idle_workload(&self) -> Workload {
        Workload::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::Volume;

    fn flat_depth(camera: &PinholeCamera, mm: u16) -> Vec<u16> {
        vec![mm; camera.pixel_count()]
    }

    /// Depth with structure: a wall plus two bumps (same layout as the ICP
    /// tests, enough to constrain the pose).
    fn structured_depth(camera: &PinholeCamera) -> Vec<u16> {
        let mut d = flat_depth(camera, 1500);
        for y in 20..60 {
            for x in 20..60 {
                d[y * camera.width + x] = 1200;
            }
        }
        for y in 70..100 {
            for x in 100..140 {
                d[y * camera.width + x] = 1350;
            }
        }
        d
    }

    fn center_pose() -> Se3 {
        Se3::from_translation(slam_math::Vec3::new(2.0, 2.0, 0.2))
    }

    #[test]
    fn first_frame_bootstraps() {
        let cam = PinholeCamera::tiny();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose());
        let r = kf.process_frame(&structured_depth(&cam));
        assert!(r.tracked);
        assert!(r.integrated);
        assert!(r.raycasted);
        assert_eq!(r.frame_index, 0);
        assert!(kf.volume().occupied_voxels() > 0);
        assert!(kf.model().is_some());
        assert_eq!(kf.frames_processed(), 1);
    }

    #[test]
    fn static_camera_stays_put() {
        let cam = PinholeCamera::tiny();
        let init = center_pose();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, init);
        let depth = structured_depth(&cam);
        for _ in 0..5 {
            let r = kf.process_frame(&depth);
            assert!(r.tracked, "frame {} lost", r.frame_index);
        }
        let drift = kf.current_pose().translation_distance(&init);
        assert!(drift < 0.01, "static camera drifted {drift} m");
        assert_eq!(kf.lost_frames(), 0);
    }

    #[test]
    fn sparse_backend_tracks_like_dense() {
        use crate::volume::VolumeBackend;
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam);
        let run = |backend| {
            let mut config = KFusionConfig::fast_test();
            config.volume_backend = backend;
            let mut kf = KinectFusion::new(config, cam, center_pose());
            for _ in 0..5 {
                let r = kf.process_frame(&depth);
                assert!(r.tracked, "frame {} lost on {backend}", r.frame_index);
            }
            kf
        };
        let dense = run(VolumeBackend::Dense);
        let sparse = run(VolumeBackend::Sparse);
        assert_eq!(sparse.volume().backend(), VolumeBackend::Sparse);
        assert!(sparse.volume().occupied_voxels() > 0);
        // the sparse marcher leaps surface-free bricks where the dense
        // one strides, so raycast sample positions — and through ICP,
        // poses — are close but not bit-equal; sub-voxel agreement is
        // the contract here (fast_test voxels are ~3 cm), and voxel
        // equivalence is asserted bit-exactly in tsdf_sparse
        let d = dense
            .current_pose()
            .translation_distance(&sparse.current_pose());
        assert!(d < 8e-3, "backends diverged {d} m");
    }

    #[test]
    fn workload_covers_all_phases() {
        let cam = PinholeCamera::tiny();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose());
        let depth = structured_depth(&cam);
        kf.process_frame(&depth);
        let r = kf.process_frame(&depth);
        for kernel in [
            Kernel::Mm2Meters,
            Kernel::BilateralFilter,
            Kernel::HalfSample,
            Kernel::Depth2Vertex,
            Kernel::Vertex2Normal,
            Kernel::Track,
            Kernel::Solve,
            Kernel::Integrate,
            Kernel::Raycast,
        ] {
            assert!(
                !r.workload.kernel(kernel).is_zero(),
                "kernel {kernel} recorded no work"
            );
        }
        assert!(r.wall_time > 0.0);
    }

    #[test]
    fn wall_time_comes_from_the_injected_clock() {
        use slam_trace::MockClock;
        let cam = PinholeCamera::tiny();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose())
            .with_clock(Arc::new(MockClock::new(500_000)));
        let r = kf.process_frame(&structured_depth(&cam));
        // exactly two readings per frame, one step (0.5 ms) apart —
        // deterministic regardless of host speed
        assert_eq!(r.wall_time, 0.0005);
        let r = kf.process_frame(&structured_depth(&cam));
        assert_eq!(r.wall_time, 0.0005);
    }

    #[test]
    fn traced_run_is_bit_identical_and_hierarchical() {
        use slam_trace::{MockClock, SpanLevel, Tracer};
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam);
        let mut plain = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose());
        let mut traced = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose());
        let tracer = Tracer::with_clock(MockClock::new(1));
        let probe = slam_math::Vec3::new(0.3, -0.2, 1.7);
        for i in 0..3 {
            let a = plain.process_frame(&depth);
            let b = traced.process_frame_traced(&depth, &tracer);
            let (pa, pb) = (a.pose.transform_point(probe), b.pose.transform_point(probe));
            for (x, y) in [(pa.x, pb.x), (pa.y, pb.y), (pa.z, pb.z)] {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "frame {i}: tracing perturbed the pose"
                );
            }
            assert_eq!(a.tracked, b.tracked);
            assert_eq!(a.icp_iterations, b.icp_iterations);
        }
        let trace = tracer.drain();
        let frames: Vec<_> = trace
            .spans()
            .filter(|s| s.level == SpanLevel::Frame)
            .collect();
        assert_eq!(frames.len(), 3);
        // kernel spans nest inside their frame: opened after (seq) and
        // contained in time
        for k in trace.spans().filter(|s| s.level == SpanLevel::Kernel) {
            let parent = frames
                .iter()
                .filter(|f| f.seq < k.seq)
                .last()
                .expect("kernel span outside any frame");
            assert!(k.start_ns >= parent.start_ns && k.end_ns <= parent.end_ns);
        }
        let profile = trace.profile();
        for name in ["bilateral", "track", "integrate", "raycast"] {
            assert!(
                profile.get_at(SpanLevel::Kernel, name).is_some(),
                "no {name} kernel span recorded"
            );
        }
        assert!(trace.counter_total("icp.iterations") > 0);
        assert!(trace.counter_total("pool.tasks") > 0);
    }

    #[test]
    fn disabling_bilateral_removes_its_work() {
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.bilateral_filter = false;
        let mut kf = KinectFusion::new(config, cam, center_pose());
        let r = kf.process_frame(&structured_depth(&cam));
        assert!(r.workload.kernel(Kernel::BilateralFilter).is_zero());
    }

    #[test]
    fn integration_rate_skips_frames() {
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.integration_rate = 2;
        let mut kf = KinectFusion::new(config, cam, center_pose());
        let depth = structured_depth(&cam);
        let r0 = kf.process_frame(&depth);
        let r1 = kf.process_frame(&depth);
        let r2 = kf.process_frame(&depth);
        assert!(r0.integrated);
        assert!(!r1.integrated, "frame 1 must be skipped at rate 2");
        assert!(r2.integrated);
    }

    #[test]
    fn tracking_rate_skips_tracking() {
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.tracking_rate = 2;
        let mut kf = KinectFusion::new(config, cam, center_pose());
        let depth = structured_depth(&cam);
        kf.process_frame(&depth);
        let r1 = kf.process_frame(&depth);
        let r2 = kf.process_frame(&depth);
        assert_eq!(r1.icp_iterations, 0, "odd frame skipped at rate 2");
        assert!(r2.icp_iterations > 0);
    }

    #[test]
    fn compute_size_ratio_shrinks_work() {
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam);
        let run = |csr: usize| {
            let mut config = KFusionConfig::fast_test();
            config.compute_size_ratio = csr;
            let mut kf = KinectFusion::new(config, cam, center_pose());
            kf.process_frame(&depth);
            kf.process_frame(&depth).workload.total()
        };
        let full = run(1);
        let quarter = run(4);
        assert!(
            quarter.ops < full.ops,
            "csr=4 ({:.2e}) should do less work than csr=1 ({:.2e})",
            quarter.ops,
            full.ops
        );
    }

    #[test]
    #[should_panic(expected = "does not match sensor resolution")]
    fn wrong_buffer_size_panics() {
        let cam = PinholeCamera::tiny();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, Se3::IDENTITY);
        kf.process_frame(&[0u16; 10]);
    }

    #[test]
    #[should_panic(expected = "invalid KinectFusion configuration")]
    fn invalid_config_panics() {
        let mut config = KFusionConfig::fast_test();
        config.compute_size_ratio = 3;
        let _ = KinectFusion::new(config, PinholeCamera::tiny(), Se3::IDENTITY);
    }

    #[test]
    fn raycast_rate_reuses_model() {
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.raycast_rate = 3;
        let mut kf = KinectFusion::new(config, cam, center_pose());
        let depth = structured_depth(&cam);
        let r0 = kf.process_frame(&depth);
        let r1 = kf.process_frame(&depth);
        let r2 = kf.process_frame(&depth);
        let r3 = kf.process_frame(&depth);
        assert!(r0.raycasted, "frame 0 must bootstrap the model");
        assert!(!r1.raycasted);
        assert!(!r2.raycasted);
        assert!(r3.raycasted);
        // tracking still works against the stale model
        assert!(r1.tracked && r2.tracked && r3.tracked);
    }

    #[test]
    fn frame_to_frame_mode_tracks_without_model() {
        use crate::config::TrackingReference;
        let cam = PinholeCamera::tiny();
        let mut config = KFusionConfig::fast_test();
        config.tracking_reference = TrackingReference::PreviousFrame;
        // raycast almost never: frame-to-frame does not need it
        config.raycast_rate = 30;
        let mut kf = KinectFusion::new(config, cam, center_pose());
        let depth = structured_depth(&cam);
        for i in 0..4 {
            let r = kf.process_frame(&depth);
            assert!(r.tracked, "frame {i} lost in frame-to-frame mode");
        }
        let drift = kf.current_pose().translation_distance(&center_pose());
        assert!(drift < 0.02, "static frame-to-frame drifted {drift} m");
    }

    #[test]
    fn all_holes_frame_is_lost_but_survives() {
        let cam = PinholeCamera::tiny();
        let mut kf = KinectFusion::new(KFusionConfig::fast_test(), cam, center_pose());
        kf.process_frame(&structured_depth(&cam));
        let r = kf.process_frame(&flat_depth(&cam, 0));
        assert!(!r.tracked);
        assert_eq!(kf.lost_frames(), 1);
        // pipeline keeps going on the next good frame
        let r = kf.process_frame(&structured_depth(&cam));
        assert!(r.tracked);
    }
}
