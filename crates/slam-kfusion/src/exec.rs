//! Shared worker-pool execution layer for the hot kernels.
//!
//! All parallel kernels (bilateral filter, ICP association, TSDF
//! integration, raycast, marching cubes) run on one process-wide pool of
//! long-lived worker threads instead of spawning OS threads per frame.
//! The submitting thread participates in executing its own tasks, so a
//! kernel never blocks idle while work remains, and a pool worker that
//! itself submits work (nested parallelism) simply drains its inner task
//! group in place — nesting cannot deadlock.
//!
//! # Determinism
//!
//! Work is partitioned by [`band_ranges`], which derives the band layout
//! from the *data size only* — never from the thread count. Each band is
//! computed independently and the per-band results are reduced in band
//! order by the caller. Floating-point reductions therefore associate the
//! same way no matter how many threads ran, and every kernel output is
//! bit-identical across thread counts (including 1).
//!
//! # Thread budgets
//!
//! Coarse-grained outer parallelism (e.g. evaluating many configurations
//! at once during design-space exploration) caps the kernels underneath
//! it with [`with_thread_budget`], so outer × inner parallelism never
//! oversubscribes the machine. [`effective_threads`] resolves a
//! configuration's `threads` knob against the machine size and the
//! active budget, and is the single thread-count derivation used
//! everywhere.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work submitted to the pool: one boxed closure whose result
/// is collected in submission order.
pub type Task<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// Maximum number of bands [`band_ranges`] splits a dimension into.
///
/// Large enough that up to `MAX_BANDS` threads can be kept busy and the
/// longest band cannot dominate, small enough that per-band overhead
/// stays negligible.
pub const MAX_BANDS: usize = 64;

/// Splits `0..n` into at most [`MAX_BANDS`] contiguous, near-equal
/// ranges. The layout depends only on `n`, never on the thread count, so
/// per-band results always reduce in the same order regardless of how
/// many threads execute the bands.
///
/// # Examples
///
/// ```
/// use slam_kfusion::exec::band_ranges;
/// let bands = band_ranges(10);
/// assert_eq!(bands.len(), 10); // n <= MAX_BANDS: one band per item
/// assert_eq!(bands[0], 0..1);
/// let big = band_ranges(1000);
/// assert_eq!(big.len(), 63);
/// assert_eq!(big.iter().map(|r| r.len()).sum::<usize>(), 1000);
/// ```
pub fn band_ranges(n: usize) -> Vec<Range<usize>> {
    let bands = n.min(MAX_BANDS);
    if bands == 0 {
        return Vec::new();
    }
    let per = n.div_ceil(bands);
    let mut out = Vec::with_capacity(bands);
    let mut start = 0usize;
    while start < n {
        let end = (start + per).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

thread_local! {
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with kernel parallelism on this thread capped at `limit`
/// (at least 1). Used by coarse-grained outer parallelism — e.g. a
/// configuration sweep evaluating many pipelines at once — so that
/// outer workers × inner kernel threads never multiply beyond the
/// machine. The previous budget is restored afterwards, even on panic.
pub fn with_thread_budget<R>(limit: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let prev = BUDGET.with(|b| b.replace(Some(limit.max(1))));
    let _restore = Restore(prev);
    f()
}

/// The kernel thread budget active on this thread, if any.
pub fn thread_budget() -> Option<usize> {
    BUDGET.with(|b| b.get())
}

/// Total concurrency the pool offers: its workers plus the submitting
/// thread (the machine's available parallelism).
pub fn available_threads() -> usize {
    pool().max_concurrency()
}

/// Resolves a `threads` knob into an actual thread count: `0` means
/// "all available", anything else is clamped to the machine size, and
/// the active [`with_thread_budget`] cap (if any) is applied on top.
/// Always at least 1. This is the single thread-count derivation the
/// kernels share.
pub fn effective_threads(requested: usize) -> usize {
    let avail = available_threads();
    let t = if requested == 0 {
        avail
    } else {
        requested.min(avail)
    };
    match thread_budget() {
        Some(b) => t.min(b).max(1),
        None => t.max(1),
    }
}

/// Runs `tasks` on the global pool with up to `threads` threads
/// (including the calling thread) and returns their results in
/// submission order. With `threads <= 1`, a single task, or no pool
/// workers, the tasks simply run serially on the caller.
///
/// Panics from tasks are forwarded to the caller after all tasks of the
/// group have finished.
pub fn run_tasks<'a, R: Send>(threads: usize, tasks: Vec<Task<'a, R>>) -> Vec<R> {
    pool().run_tasks(threads, tasks)
}

/// Convenience for read-only banded reductions: runs `f` over the
/// canonical [`band_ranges`] of `0..n` with up to `threads` threads and
/// returns the per-band results **in band order**, ready for an ordered
/// (deterministic) reduction by the caller.
pub fn run_bands<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let f = &f;
    let tasks: Vec<Task<'_, R>> = band_ranges(n)
        .into_iter()
        .map(|range| Box::new(move || f(range)) as Task<'_, R>)
        .collect();
    run_tasks(threads, tasks)
}

/// The process-wide worker pool, created on first use with one worker
/// per available hardware thread minus one (the submitter supplies the
/// remaining thread). Workers live for the rest of the process.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(hw)
    })
}

/// A type-erased, lifetime-erased task. Safety of the lifetime erasure
/// is argued at the single construction site in [`WorkerPool::run_tasks`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// One batch of jobs submitted together. Workers and the submitter claim
/// jobs by atomic index; the submitter blocks until every job has run.
struct TaskGroup {
    jobs: Vec<Mutex<Option<Job>>>,
    next: AtomicUsize,
    done: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

impl TaskGroup {
    fn new(jobs: Vec<Job>) -> TaskGroup {
        TaskGroup {
            jobs: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panic: Mutex::new(None),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        }
    }

    /// Claims and runs jobs until none are left unclaimed. Each job runs
    /// exactly once; the claimer that completes the last job flips the
    /// finished latch.
    fn run_available(&self) {
        let total = self.jobs.len();
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= total {
                return;
            }
            let job = self.jobs[i].lock().expect("job slot lock").take();
            if let Some(job) = job {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    let mut slot = self.panic.lock().expect("panic slot lock");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == total {
                *self.finished.lock().expect("finished lock") = true;
                self.finished_cv.notify_all();
            }
        }
    }

    fn wait_finished(&self) {
        let mut finished = self.finished.lock().expect("finished lock");
        while !*finished {
            finished = self.finished_cv.wait(finished).expect("finished wait");
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<TaskGroup>>>,
    work_cv: Condvar,
}

/// A pool of persistent worker threads executing [`TaskGroup`]s.
///
/// Use the process-wide instance via [`pool`] (or the [`run_tasks`] /
/// [`run_bands`] free functions); constructing extra pools leaks their
/// worker threads for the rest of the process.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    /// Creates a pool offering `total_threads` of concurrency: it spawns
    /// `total_threads - 1` detached workers, the submitting thread being
    /// the last one. `total_threads <= 1` creates a pool with no workers
    /// (everything runs on the submitter).
    pub fn new(total_threads: usize) -> WorkerPool {
        let workers = total_threads.saturating_sub(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("slam-exec-{i}"))
                .spawn(move || loop {
                    let group = {
                        let mut queue = shared.queue.lock().expect("pool queue lock");
                        loop {
                            if let Some(g) = queue.pop_front() {
                                break g;
                            }
                            queue = shared.work_cv.wait(queue).expect("pool queue wait");
                        }
                    };
                    group.run_available();
                })
                .expect("failed to spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    /// Number of persistent worker threads (not counting submitters).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Maximum concurrency for one task group: all workers plus the
    /// submitting thread.
    pub fn max_concurrency(&self) -> usize {
        self.workers + 1
    }

    /// See the free function [`run_tasks`].
    pub fn run_tasks<'a, R: Send>(&self, threads: usize, tasks: Vec<Task<'a, R>>) -> Vec<R> {
        let total = tasks.len();
        if threads <= 1 || total <= 1 || self.workers == 0 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let jobs: Vec<Job> = tasks
            .into_iter()
            .zip(results.iter())
            .map(|(task, slot)| {
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let value = task();
                    *slot.lock().expect("result slot lock") = Some(value);
                });
                // SAFETY: the job borrows `tasks`' captures (lifetime 'a)
                // and `results` (a local). Both strictly outlive the
                // group: this function does not return before
                // `wait_finished` observes every job executed (or the
                // stored panic is resumed), and unclaimed jobs cannot
                // exist past that point because claiming is the only way
                // a job leaves its slot and `done` counts every claim.
                // Queue stragglers (extra Arc clones of the group popped
                // by workers later) find only empty job slots. Hence no
                // borrow is ever dereferenced after this frame unwinds.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        let group = Arc::new(TaskGroup::new(jobs));
        // enlist at most threads-1 helpers; the submitter is the last thread
        let helpers = (threads - 1).min(self.workers).min(total - 1);
        if helpers > 0 {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&group));
            }
            drop(queue);
            self.shared.work_cv.notify_all();
        }
        group.run_available();
        group.wait_finished();
        if let Some(payload) = group.panic.lock().expect("panic slot lock").take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every task produced a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 63, 64, 65, 100, 1000, 4097] {
            let bands = band_ranges(n);
            assert!(bands.len() <= MAX_BANDS);
            let mut expected = 0usize;
            for b in &bands {
                assert_eq!(b.start, expected, "bands must be contiguous for n={n}");
                assert!(!b.is_empty(), "empty band for n={n}");
                expected = b.end;
            }
            assert_eq!(expected, n, "bands must cover 0..{n}");
        }
    }

    #[test]
    fn band_layout_ignores_thread_count() {
        // the layout is a pure function of n — this is the determinism
        // cornerstone, so pin it explicitly
        assert_eq!(band_ranges(128), band_ranges(128));
        assert_eq!(band_ranges(5).len(), 5);
        assert_eq!(band_ranges(640).len(), 64);
    }

    #[test]
    fn run_tasks_returns_in_submission_order() {
        for threads in [1usize, 2, 4, 7] {
            let tasks: Vec<Task<'_, usize>> = (0..100usize)
                .map(|i| Box::new(move || i * i) as Task<'_, usize>)
                .collect();
            let out = run_tasks(threads, tasks);
            assert_eq!(out, (0..100usize).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_tasks_borrows_caller_data() {
        let data: Vec<u64> = (0..1000).collect();
        let bands = band_ranges(data.len());
        let tasks: Vec<Task<'_, u64>> = bands
            .into_iter()
            .map(|r| {
                let slice = &data[r];
                Box::new(move || slice.iter().sum()) as Task<'_, u64>
            })
            .collect();
        let partials = run_tasks(4, tasks);
        assert_eq!(partials.iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn run_bands_reduction_is_thread_count_invariant() {
        // a float reduction whose result depends on association order:
        // identical across thread counts because the banding is fixed
        let values: Vec<f32> = (0..1234).map(|i| 1.0 / (i as f32 + 1.0)).collect();
        let sum_with = |threads: usize| -> f32 {
            run_bands(threads, values.len(), |r| {
                values[r].iter().copied().sum::<f32>()
            })
            .into_iter()
            .sum()
        };
        let reference = sum_with(1);
        for threads in [2usize, 4, 7, 64] {
            assert_eq!(sum_with(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn nested_run_tasks_completes() {
        let out = run_bands(4, 8, |outer| {
            run_bands(4, 16, |inner| (outer.len() * inner.len()) as u64)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|&v| v == 16));
    }

    #[test]
    fn panics_propagate_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            let tasks: Vec<Task<'_, ()>> = (0..16)
                .map(|i| {
                    Box::new(move || {
                        if i == 7 {
                            panic!("task seven failed");
                        }
                    }) as Task<'_, ()>
                })
                .collect();
            run_tasks(4, tasks);
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task seven failed");
    }

    #[test]
    fn thread_budget_caps_effective_threads() {
        assert_eq!(thread_budget(), None);
        let avail = available_threads();
        assert!(avail >= 1);
        assert_eq!(effective_threads(0), avail);
        assert_eq!(effective_threads(usize::MAX), avail);
        assert_eq!(effective_threads(1), 1);
        with_thread_budget(1, || {
            assert_eq!(thread_budget(), Some(1));
            assert_eq!(effective_threads(0), 1);
            assert_eq!(effective_threads(8), 1);
            with_thread_budget(3, || {
                assert_eq!(effective_threads(0), 3.min(avail));
            });
            assert_eq!(thread_budget(), Some(1));
        });
        assert_eq!(thread_budget(), None);
    }

    #[test]
    fn budget_restored_after_panic() {
        let caught = std::panic::catch_unwind(|| {
            with_thread_budget(2, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(thread_budget(), None);
    }

    #[test]
    fn explicit_multiworker_pool_runs_parallel_groups() {
        // a dedicated 4-thread pool exercises the cross-thread claim and
        // finished-latch path even on single-core machines, where the
        // global pool has no workers and everything degrades to serial
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 3);
        assert_eq!(pool.max_concurrency(), 4);
        let data: Vec<u64> = (0..10_000).collect();
        for _ in 0..50 {
            let tasks: Vec<Task<'_, u64>> = band_ranges(data.len())
                .into_iter()
                .map(|r| {
                    let slice = &data[r];
                    Box::new(move || slice.iter().sum()) as Task<'_, u64>
                })
                .collect();
            let partials = pool.run_tasks(4, tasks);
            assert_eq!(partials.iter().sum::<u64>(), 49_995_000);
        }
    }

    #[test]
    fn pool_reuses_persistent_workers() {
        // run many task groups and check no group ever sees a thread
        // outside the fixed pool (workers are created once, not per call)
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<HashSet<String>> = StdMutex::new(HashSet::new());
        for _ in 0..20 {
            let tasks: Vec<Task<'_, ()>> = (0..16)
                .map(|_| {
                    Box::new(|| {
                        let name = std::thread::current()
                            .name()
                            .unwrap_or("submitter")
                            .to_string();
                        seen.lock().unwrap().insert(name);
                    }) as Task<'_, ()>
                })
                .collect();
            run_tasks(available_threads(), tasks);
        }
        let seen = seen.into_inner().unwrap();
        // every participating thread is either the submitter or a
        // persistent named pool worker
        for name in &seen {
            assert!(
                name.starts_with("slam-exec-") || !name.starts_with("slam-"),
                "unexpected thread {name}"
            );
        }
        assert!(seen.len() <= pool().max_concurrency() + 1);
    }
}
