//! The algorithm abstraction: every dense SLAM pipeline in the workspace
//! runs behind the [`SlamAlgorithm`] trait, and [`AlgoId`] is the stable
//! handle the evaluation layers (driver, engine cache, orchestrators,
//! bins) use to pick one without naming concrete types.
//!
//! The contract an implementor signs up for:
//!
//! * **Construction** from the shared [`KFusionConfig`] knob set, the
//!   sensor intrinsics and a ground-truth initial pose (the SLAMBench
//!   evaluation protocol). Knobs without an analogue are ignored, and
//!   the algorithm's [`AlgoId::parameter_space`] descriptor tells the
//!   DSE layer which knobs are actually live.
//! * **Determinism**: [`SlamAlgorithm::step_frame_traced`] must be
//!   bit-identical for any `threads` value and with or without an
//!   enabled tracer — route all parallelism through `crate::exec` and
//!   keep private reductions ordered (the cross-algorithm determinism
//!   suite pins this).
//! * **Workload honesty**: every kernel invocation records its measured
//!   [`crate::workload::Workload`] so `slam-power` can cost the run on
//!   device models.

use crate::config::KFusionConfig;
use crate::mesh::{marching_cubes_with_threads, TriangleMesh};
use crate::odometry::PointOdometry;
use crate::pipeline::{FrameResult, KinectFusion};
use serde::{Deserialize, Serialize};
use slam_math::camera::PinholeCamera;
use slam_math::Se3;
use slam_trace::Tracer;
use std::fmt;
use std::str::FromStr;

/// A dense SLAM pipeline the evaluation stack can drive frame by frame.
///
/// Object-safe: the generic driver holds a `Box<dyn SlamAlgorithm>`
/// created through [`AlgoId::create`].
pub trait SlamAlgorithm {
    /// Processes one depth frame (millimetres, row-major, `0` = hole)
    /// and advances the pipeline state, recording spans/counters into
    /// `tracer`. Tracing must never change the outputs.
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor
    /// resolution the algorithm was created for.
    fn step_frame_traced(&mut self, depth_mm: &[u16], tracer: &Tracer) -> FrameResult;

    /// [`SlamAlgorithm::step_frame_traced`] with tracing disabled.
    ///
    /// # Panics
    ///
    /// Panics when `depth_mm.len()` does not match the sensor
    /// resolution.
    fn step_frame(&mut self, depth_mm: &[u16]) -> FrameResult {
        self.step_frame_traced(depth_mm, Tracer::off())
    }

    /// The current pose estimate (camera-to-world).
    fn current_pose(&self) -> Se3;

    /// Number of frames processed so far.
    fn frames_processed(&self) -> usize;

    /// Number of frames on which tracking failed.
    fn lost_frames(&self) -> usize;

    /// Extracts a triangle mesh of the reconstruction, if this
    /// algorithm builds a meshable model (`None` otherwise). `threads`
    /// follows the usual `0 = all available` convention and never
    /// changes the mesh bits.
    fn extract_mesh(&self, threads: usize) -> Option<TriangleMesh>;
}

/// The domain of one algorithm parameter, in DSE terms. A plain-data
/// mirror of the `slam-dse` domain kinds so algorithm crates can
/// describe their space without depending on the DSE layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamDomain {
    /// An ordered discrete set of allowed values.
    Ordinal(&'static [f64]),
    /// A continuous interval, linear scale.
    Real {
        /// Smallest allowed value.
        lo: f64,
        /// Largest allowed value.
        hi: f64,
    },
    /// A continuous interval explored on a logarithmic scale.
    LogReal {
        /// Smallest allowed value.
        lo: f64,
        /// Largest allowed value.
        hi: f64,
    },
    /// An integer range (inclusive).
    Integer {
        /// Smallest allowed value.
        lo: i64,
        /// Largest allowed value.
        hi: i64,
    },
    /// A boolean flag.
    Flag,
}

/// One tunable parameter of an algorithm's design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamDescriptor {
    /// The knob's name. Names shared with [`KFusionConfig`] fields map
    /// onto those fields when the DSE layer decodes a design point
    /// (`pyramid_l0..l2` address `pyramid_iterations`).
    pub name: &'static str,
    /// The knob's domain.
    pub domain: ParamDomain,
}

/// The KinectFusion design space — the ISPASS'18 paper's ten knobs plus
/// the TSDF storage backend (appended last so existing design-point
/// encodings keep their indices).
const KFUSION_SPACE: &[ParamDescriptor] = &[
    ParamDescriptor {
        name: "compute_size_ratio",
        domain: ParamDomain::Ordinal(&[1.0, 2.0, 4.0, 8.0]),
    },
    ParamDescriptor {
        name: "icp_threshold",
        domain: ParamDomain::LogReal { lo: 1e-6, hi: 1e-4 },
    },
    ParamDescriptor {
        name: "mu",
        domain: ParamDomain::Real { lo: 0.01, hi: 0.2 },
    },
    ParamDescriptor {
        name: "volume_resolution",
        domain: ParamDomain::Ordinal(&[32.0, 64.0, 96.0, 128.0, 192.0, 256.0]),
    },
    ParamDescriptor {
        name: "pyramid_l0",
        domain: ParamDomain::Integer { lo: 1, hi: 10 },
    },
    ParamDescriptor {
        name: "pyramid_l1",
        domain: ParamDomain::Integer { lo: 0, hi: 5 },
    },
    ParamDescriptor {
        name: "pyramid_l2",
        domain: ParamDomain::Integer { lo: 0, hi: 4 },
    },
    ParamDescriptor {
        name: "tracking_rate",
        domain: ParamDomain::Integer { lo: 1, hi: 3 },
    },
    ParamDescriptor {
        name: "integration_rate",
        domain: ParamDomain::Integer { lo: 1, hi: 5 },
    },
    ParamDescriptor {
        name: "bilateral_filter",
        domain: ParamDomain::Flag,
    },
    ParamDescriptor {
        name: "volume_backend",
        domain: ParamDomain::Flag,
    },
];

/// The point-odometry design space: the TSDF-specific knob (`mu`) is
/// gone, `volume_resolution` doubles as the point-map binning grid, and
/// `integration_rate` is the fusion cadence — nine knobs.
const ODOMETRY_SPACE: &[ParamDescriptor] = &[
    ParamDescriptor {
        name: "compute_size_ratio",
        domain: ParamDomain::Ordinal(&[1.0, 2.0, 4.0, 8.0]),
    },
    ParamDescriptor {
        name: "icp_threshold",
        domain: ParamDomain::LogReal { lo: 1e-6, hi: 1e-4 },
    },
    ParamDescriptor {
        name: "volume_resolution",
        domain: ParamDomain::Ordinal(&[32.0, 64.0, 96.0, 128.0, 192.0, 256.0]),
    },
    ParamDescriptor {
        name: "pyramid_l0",
        domain: ParamDomain::Integer { lo: 1, hi: 10 },
    },
    ParamDescriptor {
        name: "pyramid_l1",
        domain: ParamDomain::Integer { lo: 0, hi: 5 },
    },
    ParamDescriptor {
        name: "pyramid_l2",
        domain: ParamDomain::Integer { lo: 0, hi: 4 },
    },
    ParamDescriptor {
        name: "tracking_rate",
        domain: ParamDomain::Integer { lo: 1, hi: 3 },
    },
    ParamDescriptor {
        name: "integration_rate",
        domain: ParamDomain::Integer { lo: 1, hi: 5 },
    },
    ParamDescriptor {
        name: "bilateral_filter",
        domain: ParamDomain::Flag,
    },
];

/// Stable identifier of a registered algorithm.
///
/// The [`AlgoId::id`] string is part of the evaluation engine's
/// content-addressed cache key and of checkpoint metadata — never
/// change it for an existing variant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum AlgoId {
    /// Frame-to-model dense SLAM over a TSDF volume (Newcombe et al.,
    /// ISMAR 2011) — the paper's algorithm.
    #[default]
    KinectFusion,
    /// Frame-to-frame ICP odometry with point-based fusion — cheaper,
    /// no volume, drifts open-loop.
    PointOdometry,
}

impl AlgoId {
    /// Every registered algorithm, in declaration order.
    pub const ALL: [AlgoId; 2] = [AlgoId::KinectFusion, AlgoId::PointOdometry];

    /// The stable string id used in cache keys, checkpoints and
    /// reports.
    pub fn id(self) -> &'static str {
        match self {
            AlgoId::KinectFusion => "kfusion",
            AlgoId::PointOdometry => "point-odometry",
        }
    }

    /// Instantiates the algorithm for a sensor, starting at
    /// `initial_pose` (camera-to-world).
    ///
    /// # Panics
    ///
    /// Panics when `config` fails [`KFusionConfig::validate`].
    pub fn create(
        self,
        config: &KFusionConfig,
        camera: PinholeCamera,
        initial_pose: Se3,
    ) -> Box<dyn SlamAlgorithm> {
        match self {
            AlgoId::KinectFusion => {
                Box::new(KinectFusion::new(config.clone(), camera, initial_pose))
            }
            AlgoId::PointOdometry => {
                Box::new(PointOdometry::new(config.clone(), camera, initial_pose))
            }
        }
    }

    /// The algorithm's typed design-space descriptor: which
    /// [`KFusionConfig`] knobs are live for this algorithm and over
    /// what domains. The DSE layer builds its search space from this,
    /// so the space is no longer hard-wired to KinectFusion.
    pub fn parameter_space(self) -> &'static [ParamDescriptor] {
        match self {
            AlgoId::KinectFusion => KFUSION_SPACE,
            AlgoId::PointOdometry => ODOMETRY_SPACE,
        }
    }
}

impl fmt::Display for AlgoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for AlgoId {
    type Err = String;

    /// Parses a stable algorithm id. The error message enumerates every
    /// valid name: it surfaces verbatim in user-facing rejections (CLI
    /// argument errors, `slam-serve` 400 responses), where "unknown
    /// algorithm" alone would leave the caller guessing.
    fn from_str(s: &str) -> Result<AlgoId, String> {
        AlgoId::ALL
            .into_iter()
            .find(|a| a.id() == s)
            .ok_or_else(|| {
                let known: Vec<&str> = AlgoId::ALL.iter().map(|a| a.id()).collect();
                format!(
                    "unknown algorithm {s:?}; valid algorithms: {}",
                    known.join(", ")
                )
            })
    }
}

impl SlamAlgorithm for KinectFusion {
    fn step_frame_traced(&mut self, depth_mm: &[u16], tracer: &Tracer) -> FrameResult {
        self.process_frame_traced(depth_mm, tracer)
    }

    fn current_pose(&self) -> Se3 {
        KinectFusion::current_pose(self)
    }

    fn frames_processed(&self) -> usize {
        KinectFusion::frames_processed(self)
    }

    fn lost_frames(&self) -> usize {
        KinectFusion::lost_frames(self)
    }

    fn extract_mesh(&self, threads: usize) -> Option<TriangleMesh> {
        // match once so marching cubes runs statically dispatched on the
        // concrete backend instead of through the storage enum per voxel
        Some(match self.volume() {
            crate::volume::VolumeStorage::Dense(v) => marching_cubes_with_threads(v, threads),
            crate::volume::VolumeStorage::Sparse(v) => marching_cubes_with_threads(v, threads),
        })
    }
}

impl SlamAlgorithm for PointOdometry {
    fn step_frame_traced(&mut self, depth_mm: &[u16], tracer: &Tracer) -> FrameResult {
        self.process_frame_traced(depth_mm, tracer)
    }

    fn current_pose(&self) -> Se3 {
        PointOdometry::current_pose(self)
    }

    fn frames_processed(&self) -> usize {
        PointOdometry::frames_processed(self)
    }

    fn lost_frames(&self) -> usize {
        PointOdometry::lost_frames(self)
    }

    fn extract_mesh(&self, _threads: usize) -> Option<TriangleMesh> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structured_depth(camera: &PinholeCamera) -> Vec<u16> {
        let mut d = vec![1500u16; camera.pixel_count()];
        for y in 20..60 {
            for x in 20..60 {
                d[y * camera.width + x] = 1200;
            }
        }
        d
    }

    #[test]
    fn ids_are_stable_and_round_trip() {
        assert_eq!(AlgoId::KinectFusion.id(), "kfusion");
        assert_eq!(AlgoId::PointOdometry.id(), "point-odometry");
        for a in AlgoId::ALL {
            assert_eq!(a.id().parse::<AlgoId>().unwrap(), a);
            assert_eq!(format!("{a}"), a.id());
        }
        assert!("nonesuch".parse::<AlgoId>().is_err());
        assert_eq!(AlgoId::default(), AlgoId::KinectFusion);
    }

    #[test]
    fn parse_error_lists_every_valid_name() {
        let err = "nonesuch".parse::<AlgoId>().unwrap_err();
        assert!(err.contains("\"nonesuch\""), "echoes the input: {err}");
        for a in AlgoId::ALL {
            assert!(err.contains(a.id()), "missing {} in: {err}", a.id());
        }
    }

    #[test]
    fn every_algorithm_steps_through_the_trait() {
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam);
        let pose = Se3::from_translation(slam_math::Vec3::new(2.0, 2.0, 0.2));
        for id in AlgoId::ALL {
            let mut alg = id.create(&KFusionConfig::fast_test(), cam, pose);
            for i in 0..3 {
                let r = alg.step_frame(&depth);
                assert!(r.tracked, "{id}: frame {i} lost");
                assert_eq!(r.frame_index, i);
            }
            assert_eq!(alg.frames_processed(), 3);
            assert_eq!(alg.lost_frames(), 0);
            let drift = alg.current_pose().translation_distance(&pose);
            assert!(drift < 0.05, "{id}: static drift {drift} m");
        }
    }

    #[test]
    fn mesh_extraction_is_optional_per_algorithm() {
        let cam = PinholeCamera::tiny();
        let depth = structured_depth(&cam);
        let pose = Se3::from_translation(slam_math::Vec3::new(2.0, 2.0, 0.2));
        let mut kf = AlgoId::KinectFusion.create(&KFusionConfig::fast_test(), cam, pose);
        let mut odo = AlgoId::PointOdometry.create(&KFusionConfig::fast_test(), cam, pose);
        for _ in 0..3 {
            kf.step_frame(&depth);
            odo.step_frame(&depth);
        }
        let mesh = kf.extract_mesh(1).expect("KinectFusion builds a volume");
        assert!(mesh.triangle_count() > 0);
        assert!(odo.extract_mesh(1).is_none(), "odometry has no mesh");
    }

    #[test]
    fn parameter_spaces_differ_per_algorithm() {
        let kf = AlgoId::KinectFusion.parameter_space();
        let odo = AlgoId::PointOdometry.parameter_space();
        assert_eq!(kf.len(), 11);
        assert_eq!(odo.len(), 9);
        assert!(kf.iter().any(|p| p.name == "mu"));
        assert!(
            !odo.iter().any(|p| p.name == "mu"),
            "odometry has no TSDF mu"
        );
        // the backend knob is appended last so the ten original knob
        // indices — part of existing design-point encodings — are stable
        assert_eq!(kf.last().map(|p| p.name), Some("volume_backend"));
        assert!(
            !odo.iter().any(|p| p.name == "volume_backend"),
            "odometry has no TSDF volume"
        );
    }

    #[test]
    fn serde_id_is_variant_name() {
        // PipelineRun serialises AlgoId; pin the wire format
        assert_eq!(
            serde_json::to_string(&AlgoId::PointOdometry).unwrap(),
            "\"PointOdometry\""
        );
        let back: AlgoId = serde_json::from_str("\"KinectFusion\"").unwrap();
        assert_eq!(back, AlgoId::KinectFusion);
    }
}
