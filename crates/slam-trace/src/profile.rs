//! Aggregated per-kernel profile table.

use crate::{SpanEvent, SpanLevel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate statistics for one `(level, name)` span population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Hierarchy level of the aggregated spans.
    pub level: SpanLevel,
    /// Span name (for kernels, matches `Kernel::name()`).
    pub name: &'static str,
    /// Number of spans aggregated.
    pub count: usize,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Shortest span, nanoseconds.
    pub min_ns: u64,
    /// Longest span, nanoseconds.
    pub max_ns: u64,
    /// Median span (upper median for even counts), nanoseconds.
    pub median_ns: u64,
}

impl ProfileRow {
    /// Mean span duration in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e9
        }
    }

    /// Median span duration in seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }

    /// Total duration in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// A per-`(level, name)` aggregation of a trace's spans, the textual
/// counterpart of the paper's per-kernel timing tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// Rows grouped by level (frame, kernel, band, section), each level
    /// sorted by descending total time.
    rows: Vec<ProfileRow>,
}

impl Profile {
    pub(crate) fn from_spans<'a>(spans: impl Iterator<Item = &'a SpanEvent>) -> Profile {
        let mut durations: BTreeMap<(SpanLevel, &'static str), Vec<u64>> = BTreeMap::new();
        for s in spans {
            durations
                .entry((s.level, s.name))
                .or_default()
                .push(s.duration_ns());
        }
        let mut rows: Vec<ProfileRow> = durations
            .into_iter()
            .map(|((level, name), mut ds)| {
                ds.sort_unstable();
                ProfileRow {
                    level,
                    name,
                    count: ds.len(),
                    total_ns: ds.iter().sum(),
                    min_ns: ds.first().copied().unwrap_or(0),
                    max_ns: ds.last().copied().unwrap_or(0),
                    median_ns: ds.get(ds.len() / 2).copied().unwrap_or(0),
                }
            })
            .collect();
        rows.sort_by(|a, b| a.level.cmp(&b.level).then(b.total_ns.cmp(&a.total_ns)));
        Profile { rows }
    }

    /// All rows, grouped by level, each level sorted by descending
    /// total time.
    pub fn rows(&self) -> &[ProfileRow] {
        &self.rows
    }

    /// The row for `name` at the given level, if any spans were seen.
    pub fn get_at(&self, level: SpanLevel, name: &str) -> Option<&ProfileRow> {
        self.rows
            .iter()
            .find(|r| r.level == level && r.name == name)
    }

    /// The first row matching `name` at any level (levels scanned in
    /// `Frame > Kernel > Band > Section` order).
    pub fn get(&self, name: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Sum of `total_ns` over all rows at `level`.
    pub fn level_total_ns(&self, level: SpanLevel) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.level == level)
            .map(|r| r.total_ns)
            .sum()
    }

    /// Fraction of the level's total time spent in `name` (0 when the
    /// level is empty).
    pub fn share(&self, level: SpanLevel, name: &str) -> f64 {
        let total = self.level_total_ns(level);
        if total == 0 {
            return 0.0;
        }
        self.get_at(level, name)
            .map(|r| r.total_ns as f64 / total as f64)
            .unwrap_or(0.0)
    }

    /// Renders a fixed-width text table (one row per `(level, name)`),
    /// suitable for printing from bench bins.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<16} {:>6} {:>12} {:>12} {:>7}",
            "level", "name", "count", "total ms", "median ms", "share"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<8} {:<16} {:>6} {:>12.3} {:>12.3} {:>6.1}%",
                r.level.category(),
                r.name,
                r.count,
                r.total_ns as f64 / 1e6,
                r.median_ns as f64 / 1e6,
                100.0 * self.share(r.level, r.name),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MockClock, Tracer};

    #[test]
    fn aggregates_count_total_median_share() {
        let t = Tracer::with_clock(MockClock::new(5));
        for _ in 0..3 {
            let _k = t.kernel_span("bilateral");
        }
        {
            let _k = t.kernel_span("integrate");
        }
        let profile = t.drain().profile();
        let bil = profile.get_at(SpanLevel::Kernel, "bilateral").unwrap();
        // each span = open read + close read = 5ns apart
        assert_eq!(bil.count, 3);
        assert_eq!((bil.min_ns, bil.max_ns, bil.median_ns), (5, 5, 5));
        assert_eq!(bil.total_ns, 15);
        let share = profile.share(SpanLevel::Kernel, "bilateral");
        assert!((share - 0.75).abs() < 1e-12, "{share}");
        assert_eq!(profile.get("bilateral").map(|r| r.count), Some(3));
        assert!(profile.get_at(SpanLevel::Frame, "bilateral").is_none());
    }

    #[test]
    fn rows_sorted_by_level_then_total() {
        let t = Tracer::with_clock(MockClock::new(1));
        {
            let _f = t.frame_span("frame");
            for _ in 0..5 {
                let _k = t.kernel_span("raycast");
            }
            let _k = t.kernel_span("track");
        }
        let profile = t.drain().profile();
        let order: Vec<_> = profile.rows().iter().map(|r| (r.level, r.name)).collect();
        assert_eq!(
            order,
            vec![
                (SpanLevel::Frame, "frame"),
                (SpanLevel::Kernel, "raycast"),
                (SpanLevel::Kernel, "track"),
            ]
        );
        let rendered = profile.render();
        assert!(rendered.contains("raycast"), "{rendered}");
        assert!(rendered.contains("share"), "{rendered}");
    }

    #[test]
    fn empty_profile_is_benign() {
        let profile = Profile::default();
        assert!(profile.rows().is_empty());
        assert_eq!(profile.level_total_ns(SpanLevel::Kernel), 0);
        assert_eq!(profile.share(SpanLevel::Kernel, "x"), 0.0);
    }
}
