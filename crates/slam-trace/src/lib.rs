//! Zero-dependency structured tracing & per-kernel profiling.
//!
//! The source paper's contribution is *measurement*: per-kernel speed
//! reported alongside accuracy and power. This crate is the measurement
//! substrate for the rest of the workspace — a small structured tracing
//! layer that the hot kernels, the worker pool and the evaluation engine
//! can emit into without perturbing their outputs or their performance.
//!
//! # Model
//!
//! * **Spans** are hierarchical regions of time at three levels —
//!   [`SpanLevel::Frame`] > [`SpanLevel::Kernel`] > [`SpanLevel::Band`]
//!   (plus [`SpanLevel::Section`] for orchestration work such as engine
//!   batches). A span is opened with [`Tracer::span`] and closed by
//!   dropping the returned guard.
//! * **Counters** are named monotonic tallies ([`Tracer::counter`]) —
//!   ICP iterations, engine cache hits, pool task counts.
//! * **Clocks** are pluggable via the [`Clock`] trait: [`WallClock`] for
//!   real runs, [`MockClock`] for deterministic tests. `WallClock` is the
//!   single place in the workspace allowed to call
//!   `std::time::Instant::now()` (enforced by the `trace-clock` xtask
//!   lint).
//!
//! # Hot-path design
//!
//! Each recording thread stages events into a thread-local `Vec` — no
//! locks, no shared-cache-line traffic while a kernel runs. The staged
//! events are flushed into that thread's own per-worker buffer only when
//! its outermost span closes (an uncontended mutex acquire, once per
//! top-level region). [`Tracer::drain`] merges the per-worker buffers
//! into a [`Trace`] ordered by a global open-sequence number, so parent
//! spans always precede their children regardless of which pool worker
//! recorded them.
//!
//! A disabled tracer ([`Tracer::disabled`]) is a true no-op: no
//! allocation, no clock reads, no thread-local access.
//!
//! # Example
//!
//! ```
//! use slam_trace::{MockClock, SpanLevel, Tracer};
//!
//! let tracer = Tracer::with_clock(MockClock::new(1_000));
//! {
//!     let _frame = tracer.frame_span("frame");
//!     let _kernel = tracer.kernel_span("bilateral");
//!     tracer.counter("icp.iterations", 3);
//! }
//! let trace = tracer.drain();
//! assert_eq!(trace.spans().count(), 2);
//! assert_eq!(trace.counter_total("icp.iterations"), 3);
//! let profile = trace.profile();
//! assert!(profile.get_at(SpanLevel::Kernel, "bilateral").is_some());
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

mod clock;
mod profile;
mod trace;
mod tracer;

pub use clock::{Clock, MockClock, WallClock};
pub use profile::{Profile, ProfileRow};
pub use trace::Trace;
pub use tracer::{Span, Tracer};

/// Hierarchy level of a span: `Frame > Kernel > Band`, with `Section`
/// for orchestration-level regions (engine batches, scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanLevel {
    /// One pipeline frame (`step_frame`).
    Frame,
    /// One algorithmic kernel inside a frame (bilateral, track, ...).
    Kernel,
    /// One parallel band of a kernel, executed on a pool worker.
    Band,
    /// Orchestration work outside the frame hierarchy (engine batches,
    /// cache probes, pool scheduling).
    Section,
}

impl SpanLevel {
    /// Stable lowercase name, used as the Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            SpanLevel::Frame => "frame",
            SpanLevel::Kernel => "kernel",
            SpanLevel::Band => "band",
            SpanLevel::Section => "section",
        }
    }
}

/// A closed span as recorded in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (kernel names match `slam_kfusion::Kernel::name()`).
    pub name: &'static str,
    /// Hierarchy level.
    pub level: SpanLevel,
    /// Recording thread's slot in the tracer's worker registry.
    pub thread: usize,
    /// Nesting depth *on the recording thread* when the span opened
    /// (0 = outermost on that thread).
    pub depth: usize,
    /// Clock reading at open, in nanoseconds.
    pub start_ns: u64,
    /// Clock reading at close, in nanoseconds.
    pub end_ns: u64,
    /// Global open-sequence number; parents order before children.
    pub seq: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (saturating: a misbehaving [`Clock`]
    /// cannot produce a negative duration).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A counter increment as recorded in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEvent {
    /// Counter name, e.g. `"engine.cache_hit"`.
    pub name: &'static str,
    /// Recording thread's slot in the tracer's worker registry.
    pub thread: usize,
    /// Amount added to the counter.
    pub value: u64,
    /// Clock reading when recorded, in nanoseconds.
    pub ts_ns: u64,
    /// Global sequence number shared with spans.
    pub seq: u64,
}

/// One recorded event: a closed span or a counter increment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A closed span.
    Span(SpanEvent),
    /// A counter increment.
    Counter(CounterEvent),
}

impl Event {
    /// Global sequence number (shared ordering domain for all events).
    pub fn seq(&self) -> u64 {
        match self {
            Event::Span(s) => s.seq,
            Event::Counter(c) => c.seq,
        }
    }
}
