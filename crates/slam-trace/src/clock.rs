//! Pluggable time sources.
//!
//! Everything in the workspace that needs a timestamp goes through the
//! [`Clock`] trait; [`WallClock`] is the one sanctioned
//! `std::time::Instant::now()` site (the `trace-clock` xtask lint
//! forbids it everywhere else), and [`MockClock`] makes timing plumbing
//! testable deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond time source.
///
/// Implementations must be cheap and thread-safe: `now_ns` is called
/// from pool workers inside hot kernels.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current reading in nanoseconds from an arbitrary (per-clock)
    /// origin. Must be monotonic non-decreasing per clock instance.
    fn now_ns(&self) -> u64;
}

/// Real monotonic time, measured from the instant the clock was built.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds overflow after ~584 years of process uptime
        u128::min(self.origin.elapsed().as_nanos(), u128::from(u64::MAX)) as u64
    }
}

/// Deterministic clock for tests: every reading advances by a fixed
/// step, so the reported times depend only on the number of calls, not
/// on the machine.
///
/// ```
/// use slam_trace::{Clock, MockClock};
/// let c = MockClock::new(10);
/// assert_eq!(c.now_ns(), 10);
/// assert_eq!(c.now_ns(), 20);
/// c.advance(100);
/// assert_eq!(c.now_ns(), 130);
/// ```
#[derive(Debug)]
pub struct MockClock {
    now: AtomicU64,
    step: u64,
}

impl MockClock {
    /// A mock clock starting at 0 that advances by `step_ns` per reading.
    pub fn new(step_ns: u64) -> MockClock {
        MockClock {
            now: AtomicU64::new(0),
            step: step_ns,
        }
    }

    /// Manually advance the clock by `ns` (on top of the per-read step).
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed) + self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_deterministic() {
        let a = MockClock::new(7);
        let b = MockClock::new(7);
        for _ in 0..5 {
            assert_eq!(a.now_ns(), b.now_ns());
        }
        a.advance(100);
        assert_eq!(a.now_ns(), b.now_ns() + 100);
    }
}
