//! The recording side: [`Tracer`], span guards and counters.
//!
//! # Concurrency design
//!
//! The hot path (open/close a span, bump a counter) must be lock-free:
//! pool workers record band spans while the submitting thread records
//! the enclosing kernel span, and any shared lock would serialise the
//! very parallelism being measured. The design:
//!
//! * Every recording thread lazily registers a per-thread
//!   [`WorkerBuffer`] with the tracer (one registry append, once per
//!   thread per tracer) and keeps a *thread-local staging `Vec`* of
//!   events.
//! * Recording pushes into the staging `Vec` — no synchronisation at
//!   all.
//! * When the thread's outermost span closes (its nesting depth returns
//!   to zero), the staged events are moved into its own `WorkerBuffer`
//!   in one append. That buffer's mutex is only ever contended with
//!   [`Tracer::drain`], never with another recording thread, so the
//!   acquire is uncontended in steady state.
//! * [`Tracer::drain`] collects every worker buffer and sorts by the
//!   global open-sequence number, restoring the cross-thread hierarchy.
//!
//! Events are therefore guaranteed visible at drain time as long as all
//! spans have closed — which the pool's structured-concurrency model
//! already guarantees: `run_tasks` does not return until every task
//! (and thus every band span inside it) has finished.

use crate::clock::{Clock, WallClock};
use crate::trace::Trace;
use crate::{CounterEvent, Event, SpanEvent, SpanLevel};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, treating poison as benign: buffers hold plain event
/// data whose invariants cannot be broken mid-update in a way that
/// matters to a profiler.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

/// Per-recording-thread event buffer, merged at drain.
#[derive(Debug, Default)]
struct WorkerBuffer {
    events: Mutex<Vec<Event>>,
}

#[derive(Debug)]
struct TracerShared {
    /// Process-unique id, used to find this tracer's slot in each
    /// thread's staging list.
    id: u64,
    clock: Box<dyn Clock>,
    /// Global open-sequence counter: allocated when a span opens (or a
    /// counter fires), so parents always sort before their children.
    seq: AtomicU64,
    /// Registry of per-thread buffers; a thread's slot is its index.
    workers: Mutex<Vec<Arc<WorkerBuffer>>>,
}

/// This thread's staging state for one tracer.
struct ThreadState {
    tracer_id: u64,
    /// Index into the tracer's worker registry.
    slot: usize,
    /// This thread's own buffer (flush target).
    sink: Arc<WorkerBuffer>,
    /// Current span nesting depth on this thread.
    depth: usize,
    /// Events staged since the last flush. Lock-free to push.
    staged: Vec<Event>,
}

thread_local! {
    /// Staging states for every tracer this thread has recorded into.
    /// A `Vec` (not a map): a thread records into one or two tracers at
    /// a time, and linear scan beats hashing at that size.
    static STAGING: RefCell<Vec<ThreadState>> = const { RefCell::new(Vec::new()) };
}

/// Pool workers are long-lived, tracers are not: cap how many idle
/// staging states a thread retains so short-lived tracers (one per
/// bench repetition, say) cannot accumulate without bound.
const MAX_IDLE_STATES: usize = 32;

/// Runs `f` with this thread's staging state for `shared`, registering
/// the thread with the tracer on first use.
fn with_state<R>(shared: &TracerShared, f: impl FnOnce(&mut ThreadState) -> R) -> R {
    STAGING.with(|cell| {
        let mut states = cell.borrow_mut();
        let idx = match states.iter().position(|s| s.tracer_id == shared.id) {
            Some(i) => i,
            None => {
                if states.len() >= MAX_IDLE_STATES {
                    states.retain(|s| s.depth > 0 || !s.staged.is_empty());
                }
                let (slot, sink) = shared.register_thread();
                states.push(ThreadState {
                    tracer_id: shared.id,
                    slot,
                    sink,
                    depth: 0,
                    staged: Vec::new(),
                });
                states.len() - 1
            }
        };
        f(&mut states[idx])
    })
}

/// Moves the staged events into the thread's own buffer if its
/// outermost span has closed.
fn flush_if_idle(state: &mut ThreadState) {
    if state.depth == 0 && !state.staged.is_empty() {
        let staged = std::mem::take(&mut state.staged);
        lock(&state.sink.events).extend(staged);
    }
}

impl TracerShared {
    fn register_thread(&self) -> (usize, Arc<WorkerBuffer>) {
        let mut workers = lock(&self.workers);
        let slot = workers.len();
        let buf = Arc::new(WorkerBuffer::default());
        workers.push(Arc::clone(&buf));
        (slot, buf)
    }
}

/// A structured-event recorder.
///
/// Cloning is cheap and shares the underlying buffers; pass `&Tracer`
/// down the call stack (the instrumented APIs all take one).
/// [`Tracer::disabled`] is a `const` no-op recorder for call sites that
/// do not want tracing — it never allocates or reads the clock.
#[derive(Debug, Clone)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
}

/// A disabled tracer usable as `&Tracer::disabled()` in delegating APIs.
static DISABLED: Tracer = Tracer::disabled();

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// An enabled tracer on real time ([`WallClock`]).
    pub fn new() -> Tracer {
        Tracer::with_clock(WallClock::new())
    }

    /// An enabled tracer on the given clock (e.g. a
    /// [`MockClock`](crate::MockClock) in tests).
    pub fn with_clock(clock: impl Clock + 'static) -> Tracer {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                clock: Box::new(clock),
                seq: AtomicU64::new(0),
                workers: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A no-op tracer: every operation returns immediately without
    /// allocating, reading the clock, or touching thread-locals.
    pub const fn disabled() -> Tracer {
        Tracer { shared: None }
    }

    /// A `'static` reference to a disabled tracer, for APIs that
    /// delegate to a traced variant.
    pub fn off() -> &'static Tracer {
        &DISABLED
    }

    /// Whether this tracer records anything. Lets call sites skip
    /// building span names or arguments when disabled.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span; it closes (and is recorded) when the returned
    /// guard drops. Guards must drop in reverse open order on a given
    /// thread — the natural consequence of binding them to scopes.
    #[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
    pub fn span(&self, level: SpanLevel, name: &'static str) -> Span<'_> {
        let Some(shared) = self.shared.as_deref() else {
            return Span { active: None };
        };
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        let (slot, depth) = with_state(shared, |s| {
            s.depth += 1;
            (s.slot, s.depth - 1)
        });
        // read the clock last so registration cost stays outside the span
        let start_ns = shared.clock.now_ns();
        Span {
            active: Some(ActiveSpan {
                shared,
                name,
                level,
                slot,
                depth,
                seq,
                start_ns,
            }),
        }
    }

    /// Opens a [`SpanLevel::Frame`] span.
    #[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
    pub fn frame_span(&self, name: &'static str) -> Span<'_> {
        self.span(SpanLevel::Frame, name)
    }

    /// Opens a [`SpanLevel::Kernel`] span.
    #[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
    pub fn kernel_span(&self, name: &'static str) -> Span<'_> {
        self.span(SpanLevel::Kernel, name)
    }

    /// Opens a [`SpanLevel::Band`] span.
    #[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
    pub fn band_span(&self, name: &'static str) -> Span<'_> {
        self.span(SpanLevel::Band, name)
    }

    /// Opens a [`SpanLevel::Section`] span.
    #[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
    pub fn section_span(&self, name: &'static str) -> Span<'_> {
        self.span(SpanLevel::Section, name)
    }

    /// Adds `value` to the named counter.
    pub fn counter(&self, name: &'static str, value: u64) {
        let Some(shared) = self.shared.as_deref() else {
            return;
        };
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        let ts_ns = shared.clock.now_ns();
        with_state(shared, |s| {
            s.staged.push(Event::Counter(CounterEvent {
                name,
                thread: s.slot,
                value,
                ts_ns,
                seq,
            }));
            flush_if_idle(s);
        });
    }

    /// Collects everything recorded so far into a [`Trace`], emptying
    /// the buffers. Events staged under still-open spans are not yet
    /// visible; drain after the work being measured has completed (the
    /// pool's structured concurrency guarantees worker spans are closed
    /// and flushed once the submitting call returns).
    pub fn drain(&self) -> Trace {
        let Some(shared) = self.shared.as_deref() else {
            return Trace::default();
        };
        // flush this thread's own idle staging (e.g. trailing counters
        // recorded at depth 0 are flushed eagerly, but be defensive)
        with_state(shared, flush_if_idle);
        let workers = lock(&shared.workers);
        let mut events = Vec::new();
        for buf in workers.iter() {
            events.append(&mut lock(&buf.events));
        }
        drop(workers);
        events.sort_by_key(Event::seq);
        Trace::new(events)
    }
}

struct ActiveSpan<'t> {
    shared: &'t TracerShared,
    name: &'static str,
    level: SpanLevel,
    slot: usize,
    depth: usize,
    seq: u64,
    start_ns: u64,
}

/// Guard for an open span; dropping it closes and records the span.
#[must_use = "a span is recorded when its guard drops; binding it to `_` closes it immediately"]
pub struct Span<'t> {
    active: Option<ActiveSpan<'t>>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let end_ns = a.shared.clock.now_ns();
        with_state(a.shared, |s| {
            s.staged.push(Event::Span(SpanEvent {
                name: a.name,
                level: a.level,
                thread: a.slot,
                depth: a.depth,
                start_ns: a.start_ns,
                end_ns,
                seq: a.seq,
            }));
            s.depth = s.depth.saturating_sub(1);
            flush_if_idle(s);
        });
    }
}

impl std::fmt::Debug for Span<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.active {
            Some(a) => write!(f, "Span({:?}, {:?}, open)", a.level, a.name),
            None => write!(f, "Span(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MockClock;

    #[test]
    fn nesting_depth_and_order_are_recorded() {
        let t = Tracer::with_clock(MockClock::new(10));
        {
            let _f = t.frame_span("frame");
            {
                let _k = t.kernel_span("bilateral");
                t.counter("pool.tasks", 4);
            }
            let _k2 = t.kernel_span("integrate");
        }
        let trace = t.drain();
        let spans: Vec<_> = trace.spans().collect();
        assert_eq!(spans.len(), 3);
        assert_eq!((spans[0].name, spans[0].depth), ("frame", 0), "{spans:?}");
        assert_eq!((spans[1].name, spans[1].depth), ("bilateral", 1));
        assert_eq!((spans[2].name, spans[2].depth), ("integrate", 1));
        // parent opened before child => lower seq, despite closing later
        assert!(spans[0].seq < spans[1].seq);
        // spans nest in time
        assert!(spans[0].start_ns < spans[1].start_ns);
        assert!(spans[1].end_ns < spans[0].end_ns);
        assert_eq!(trace.counter_total("pool.tasks"), 4);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        {
            let _s = t.frame_span("frame");
            t.counter("c", 1);
        }
        let trace = t.drain();
        assert!(trace.is_empty());
        assert!(!Tracer::off().enabled());
    }

    #[test]
    fn cross_thread_spans_merge_in_open_order() {
        let t = Tracer::with_clock(MockClock::new(1));
        {
            let _f = t.frame_span("frame");
            let _k = t.kernel_span("integrate");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let tr = &t;
                    scope.spawn(move || {
                        let _b = tr.band_span("integrate");
                        tr.counter("pool.tasks", 1);
                    });
                }
            });
        }
        let trace = t.drain();
        let spans: Vec<_> = trace.spans().collect();
        assert_eq!(spans.len(), 6);
        // frame and kernel opened first, so they lead the merged order
        assert_eq!(spans[0].level, SpanLevel::Frame);
        assert_eq!(spans[1].level, SpanLevel::Kernel);
        let bands: Vec<_> = spans[2..].iter().collect();
        assert!(bands.iter().all(|s| s.level == SpanLevel::Band));
        // each worker thread registered its own slot; bands are depth 0
        // on their own threads
        assert!(bands.iter().all(|s| s.depth == 0));
        let mut slots: Vec<_> = bands.iter().map(|s| s.thread).collect();
        slots.sort_unstable();
        slots.dedup();
        assert_eq!(slots.len(), 4, "one registry slot per worker thread");
        assert_eq!(trace.counter_total("pool.tasks"), 4);
    }

    #[test]
    fn draining_twice_yields_nothing_new() {
        let t = Tracer::new();
        {
            let _s = t.section_span("batch");
        }
        assert_eq!(t.drain().len(), 1);
        assert_eq!(t.drain().len(), 0);
    }

    #[test]
    fn many_short_lived_tracers_do_not_accumulate_thread_state() {
        // regression guard for the MAX_IDLE_STATES retention cap: a
        // long-lived thread recording into a stream of fresh tracers
        // must not grow its staging list without bound
        for _ in 0..10 * MAX_IDLE_STATES {
            let t = Tracer::with_clock(MockClock::new(1));
            let _s = t.kernel_span("raycast");
            drop(_s);
            assert_eq!(t.drain().len(), 1);
        }
        STAGING.with(|cell| {
            assert!(cell.borrow().len() <= MAX_IDLE_STATES + 1);
        });
    }

    #[test]
    fn clone_shares_buffers() {
        let t = Tracer::with_clock(MockClock::new(1));
        let t2 = t.clone();
        {
            let _s = t2.kernel_span("track");
        }
        assert_eq!(t.drain().len(), 1);
    }
}
