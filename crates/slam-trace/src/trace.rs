//! The drained side: [`Trace`] and the Chrome `trace_event` sink.

use crate::profile::Profile;
use crate::{CounterEvent, Event, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An ordered batch of recorded events, as returned by
/// [`Tracer::drain`](crate::Tracer::drain).
///
/// Events are ordered by their global open-sequence number, so a parent
/// span always precedes the spans and counters recorded inside it, even
/// when those were recorded on different pool workers.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    pub(crate) fn new(events: Vec<Event>) -> Trace {
        Trace { events }
    }

    /// All events in open order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The closed spans, in open order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Span(s) => Some(s),
            Event::Counter(_) => None,
        })
    }

    /// The counter increments, in record order.
    pub fn counters(&self) -> impl Iterator<Item = &CounterEvent> + '_ {
        self.events.iter().filter_map(|e| match e {
            Event::Counter(c) => Some(c),
            Event::Span(_) => None,
        })
    }

    /// Sum of all increments of the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Totals of every counter seen, keyed by name.
    pub fn counter_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for c in self.counters() {
            *totals.entry(c.name).or_insert(0) += c.value;
        }
        totals
    }

    /// Totals of every counter whose name starts with `prefix`, keyed by
    /// name. Subsystems namespace their counters with a dotted prefix
    /// (`engine.`, `serve.`), so this is the one-call way to pull a
    /// subsystem's whole counter family out of a shared trace.
    pub fn counters_with_prefix(&self, prefix: &str) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for c in self.counters() {
            if c.name.starts_with(prefix) {
                *totals.entry(c.name).or_insert(0) += c.value;
            }
        }
        totals
    }

    /// Aggregates the spans into a per-name [`Profile`] table.
    pub fn profile(&self) -> Profile {
        Profile::from_spans(self.spans())
    }

    /// Serialises to Chrome `trace_event` JSON (the "JSON Object
    /// Format"), loadable in `about://tracing` or Perfetto.
    ///
    /// Spans become `ph:"X"` complete events (`ts`/`dur` in
    /// microseconds, fractional); counter increments become `ph:"C"`
    /// counter events. `tid` is the tracer's per-thread registry slot.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 112 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match event {
                Event::Span(s) => {
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, s.name);
                    let _ = write!(
                        out,
                        ",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                         \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{},\"seq\":{}}}}}",
                        s.level.category(),
                        s.thread,
                        s.start_ns as f64 / 1e3,
                        s.duration_ns() as f64 / 1e3,
                        s.depth,
                        s.seq,
                    );
                }
                Event::Counter(c) => {
                    out.push_str("{\"name\":");
                    push_json_str(&mut out, c.name);
                    let _ = write!(
                        out,
                        ",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\
                         \"ts\":{:.3},\"args\":{{\"value\":{}}}}}",
                        c.thread,
                        c.ts_ns as f64 / 1e3,
                        c.value,
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MockClock, Tracer};

    #[test]
    fn chrome_json_shape() {
        let t = Tracer::with_clock(MockClock::new(1_000));
        {
            let _f = t.frame_span("frame");
            let _k = t.kernel_span("bilateral");
            t.counter("engine.cache_hit", 2);
        }
        let json = t.drain().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"bilateral\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"cat\":\"kernel\""));
        assert!(json.contains("\"value\":2"));
        // MockClock(1000): 1µs per reading, so ts/dur land on whole µs
        assert!(json.contains("\"ts\":1.000"), "{json}");
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\u000ad\"");
    }

    #[test]
    fn counter_totals_sum_per_name() {
        let t = Tracer::with_clock(MockClock::new(1));
        t.counter("a", 1);
        t.counter("b", 10);
        t.counter("a", 2);
        let trace = t.drain();
        let totals = trace.counter_totals();
        assert_eq!(totals.get("a"), Some(&3));
        assert_eq!(totals.get("b"), Some(&10));
        assert_eq!(trace.counter_total("missing"), 0);
    }

    #[test]
    fn counters_with_prefix_select_one_namespace() {
        let t = Tracer::with_clock(MockClock::new(1));
        t.counter("serve.request", 1);
        t.counter("serve.cross_shard_hit", 2);
        t.counter("engine.cache_hit", 5);
        t.counter("serve.request", 1);
        let trace = t.drain();
        let serve = trace.counters_with_prefix("serve.");
        assert_eq!(serve.len(), 2);
        assert_eq!(serve.get("serve.request"), Some(&2));
        assert_eq!(serve.get("serve.cross_shard_hit"), Some(&2));
        assert!(trace.counters_with_prefix("nope.").is_empty());
    }

    #[test]
    fn empty_trace_serialises_to_empty_array() {
        let json = Trace::default().to_chrome_json();
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
