//! Loopback integration tests for the `slam-serve` campaign server:
//! concurrent clients against a sharded engine must be bit-identical to
//! a serial single-engine run, malformed requests get typed 400s, a
//! campaign cancels mid-flight, and a killed server resumes in-flight
//! campaigns from its persisted state with byte-identical outcomes.

use slam_kfusion::KFusionConfig;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_serve::{
    serve, CampaignHub, CampaignKind, CampaignPhase, CampaignRequest, CampaignStatus, Client,
    ErrorBody, OutcomeRecord, OutcomeStatus, OutcomesPage, Priority, ServeOptions,
    ServerStatsReport, Submitted,
};
use slambench::engine::{EvalEngine, RunOutcome};
use slambench::run::PipelineRun;
use std::path::PathBuf;

/// A unique scratch state dir per test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slam-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_dataset(frames: usize) -> DatasetConfig {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = frames;
    dc
}

/// Distinct-but-valid configurations, keyed so every (client, slot)
/// pair maps to a different point of the space.
fn config_for(client: usize, slot: usize) -> KFusionConfig {
    let mut c = KFusionConfig::fast_test();
    c.volume_resolution = 32;
    c.pyramid_iterations = [1 + (client % 3), 1 + (slot % 2), 1];
    c
}

fn sweep_request(client: usize, slots: usize, frames: usize) -> CampaignRequest {
    CampaignRequest {
        algorithm: "kfusion".to_string(),
        dataset: tiny_dataset(frames),
        kind: CampaignKind::Sweep {
            configs: (0..slots).map(|j| config_for(client, j)).collect(),
        },
        priority: Priority::Batch,
        device: None,
    }
}

fn start_server(
    state_dir: &PathBuf,
    shards: usize,
    executors: usize,
    quantum: usize,
) -> (CampaignHub, slam_serve::ServeHandle) {
    let mut options = ServeOptions::new(state_dir);
    options.shards = shards;
    options.executors = executors;
    options.quantum = quantum;
    let hub = CampaignHub::start(options);
    let handle = serve(hub.clone(), "127.0.0.1:0").expect("loopback bind");
    (hub, handle)
}

/// Polls a campaign to completion, returning its outcome records.
fn drain_outcomes(client: Client, id: u64, total: usize) -> Vec<OutcomeRecord> {
    let mut records = Vec::new();
    while records.len() < total {
        let page: OutcomesPage = client
            .get(&format!(
                "/campaigns/{id}/outcomes?from={}&wait=1",
                records.len()
            ))
            .expect("server reachable")
            .json()
            .expect("outcomes page decodes");
        let stalled = page.records.is_empty();
        records.extend(page.records);
        if page.done || stalled && records.len() >= total {
            break;
        }
    }
    records
}

/// Serialises a run with `wall_time` zeroed: the one field that is
/// nondeterministic on fresh executions.
fn run_fingerprint(run: &PipelineRun) -> String {
    let mut normalized = run.clone();
    for frame in &mut normalized.frames {
        frame.wall_time = 0.0;
    }
    serde_json::to_string(&normalized).expect("run serialises")
}

#[test]
fn concurrent_clients_over_shards_match_a_serial_engine_bit_identically() {
    let clients = 4usize;
    let slots = 3usize;
    let frames = 4usize;
    let state = scratch_dir("concurrent");
    let (hub, handle) = start_server(&state, 2, 3, 2);
    let addr = handle.addr();

    // hammer the server from four concurrent clients
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let client = Client::new(addr);
            // xtask-allow: threading — reason: integration clients model independent processes; the exec pool is never entered from these threads
            std::thread::spawn(move || {
                let request = sweep_request(c, slots, frames);
                let submitted: Submitted = client
                    .post("/campaigns", &request)
                    .expect("server reachable")
                    .json()
                    .expect("submit decodes");
                assert_eq!(submitted.total, slots);
                drain_outcomes(client, submitted.id, submitted.total)
            })
        })
        .collect();
    let streamed: Vec<Vec<OutcomeRecord>> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    // the serial ground truth: one engine, no shards, no server
    let engine = EvalEngine::new();
    for (c, records) in streamed.iter().enumerate() {
        assert_eq!(records.len(), slots, "client {c} got every outcome");
        let dataset = SyntheticDataset::generate(&tiny_dataset(frames));
        let configs: Vec<KFusionConfig> = (0..slots).map(|j| config_for(c, j)).collect();
        let serial = engine
            .try_evaluate_batch_outcomes(&dataset, &configs)
            .expect("serial batch evaluates");
        for (record, outcome) in records.iter().zip(&serial) {
            assert_eq!(record.status, OutcomeStatus::Done);
            let served = record.run.as_ref().expect("done record carries its run");
            let RunOutcome::Done(expected) = outcome else {
                panic!("serial outcome unexpectedly not Done");
            };
            assert_eq!(
                run_fingerprint(served),
                run_fingerprint(expected),
                "client {c} record {} diverges from the serial engine",
                record.index
            );
        }
    }

    // the stats surface agrees with the sharding story
    let stats: ServerStatsReport = Client::new(addr)
        .get("/stats")
        .expect("server reachable")
        .json()
        .expect("stats decode");
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.campaigns.len(), clients);
    handle.stop();
    hub.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn streamed_outcomes_match_polled_pages() {
    let state = scratch_dir("stream");
    let (hub, handle) = start_server(&state, 2, 2, 2);
    let client = Client::new(handle.addr());
    let submitted: Submitted = client
        .post("/campaigns", &sweep_request(0, 3, 3))
        .expect("server reachable")
        .json()
        .expect("submit decodes");
    // the chunked stream blocks until the campaign is terminal
    let lines = client
        .stream(&format!("/campaigns/{}/stream?from=0", submitted.id))
        .expect("stream completes");
    let polled = drain_outcomes(client, submitted.id, submitted.total);
    assert_eq!(lines.len(), polled.len());
    for (line, record) in lines.iter().zip(&polled) {
        assert_eq!(
            line,
            &serde_json::to_string(record).expect("record serialises"),
            "stream and page disagree at index {}",
            record.index
        );
    }
    handle.stop();
    hub.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn malformed_requests_get_typed_errors() {
    let state = scratch_dir("badreq");
    let (hub, handle) = start_server(&state, 1, 1, 2);
    let client = Client::new(handle.addr());

    // non-JSON body → 400 with a parse message
    let resp = client
        .post("/campaigns", &"{ this is not a campaign")
        .expect("server reachable");
    assert_eq!(resp.status, 400);
    let err: ErrorBody = resp.json().expect("error body decodes");
    assert!(
        err.error.contains("invalid campaign request"),
        "{}",
        err.error
    );

    // unknown algorithm → 400 listing every registered algorithm id
    let mut request = sweep_request(0, 1, 3);
    request.algorithm = "nonesuch".to_string();
    let resp = client
        .post("/campaigns", &request)
        .expect("server reachable");
    assert_eq!(resp.status, 400);
    let err: ErrorBody = resp.json().expect("error body decodes");
    for needle in ["nonesuch", "kfusion", "point-odometry"] {
        assert!(
            err.error.contains(needle),
            "{:?} missing {needle}",
            err.error
        );
    }

    // empty sweep → 400; the campaign id is burnt but nothing runs
    let mut request = sweep_request(0, 1, 3);
    request.kind = CampaignKind::Sweep { configs: vec![] };
    let resp = client
        .post("/campaigns", &request)
        .expect("server reachable");
    assert_eq!(resp.status, 400);

    // unknown campaign and unknown route → 404
    assert_eq!(client.get("/campaigns/999").expect("reachable").status, 404);
    assert_eq!(client.get("/no/such/route").expect("reachable").status, 404);
    handle.stop();
    hub.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn cancel_stops_a_campaign_mid_flight() {
    let state = scratch_dir("cancel");
    // quantum 1 + one executor: outcomes land one at a time, so the
    // cancel races only against single evaluations
    let (hub, handle) = start_server(&state, 1, 1, 1);
    let client = Client::new(handle.addr());
    let submitted: Submitted = client
        .post("/campaigns", &sweep_request(1, 8, 4))
        .expect("server reachable")
        .json()
        .expect("submit decodes");
    // wait until at least one outcome exists, then cancel
    let first: OutcomesPage = client
        .get(&format!(
            "/campaigns/{}/outcomes?from=0&wait=1",
            submitted.id
        ))
        .expect("server reachable")
        .json()
        .expect("page decodes");
    assert!(!first.records.is_empty(), "campaign started");
    let resp = client
        .delete(&format!("/campaigns/{}", submitted.id))
        .expect("server reachable");
    assert_eq!(resp.status, 200);
    let status: CampaignStatus = resp.json().expect("status decodes");
    assert!(
        matches!(
            status.phase,
            CampaignPhase::Cancelled | CampaignPhase::Running
        ),
        "cancel acknowledged, got {:?}",
        status.phase
    );
    // the campaign settles into Cancelled with a short outcome log
    let mut last = status;
    for _ in 0..600 {
        if last.phase.is_terminal() {
            break;
        }
        last = client
            .get(&format!("/campaigns/{}", submitted.id))
            .expect("server reachable")
            .json()
            .expect("status decodes");
    }
    assert_eq!(last.phase, CampaignPhase::Cancelled);
    assert!(
        last.completed < submitted.total,
        "cancel landed mid-campaign ({}/{})",
        last.completed,
        submitted.total
    );
    handle.stop();
    hub.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn killed_server_resumes_campaigns_byte_identically() {
    let state = scratch_dir("resume");
    let slots = 8usize;
    // first life: single executor, quantum 1 — the kill lands after the
    // first outcome, well before the campaign finishes
    let (hub, handle) = start_server(&state, 2, 1, 1);
    let client = Client::new(handle.addr());
    let submitted: Submitted = client
        .post("/campaigns", &sweep_request(2, slots, 4))
        .expect("server reachable")
        .json()
        .expect("submit decodes");
    let first: OutcomesPage = client
        .get(&format!(
            "/campaigns/{}/outcomes?from=0&wait=1",
            submitted.id
        ))
        .expect("server reachable")
        .json()
        .expect("page decodes");
    assert!(
        !first.records.is_empty(),
        "campaign started before the kill"
    );
    let pre_kill: Vec<String> = first
        .records
        .iter()
        .map(|r| serde_json::to_string(r).expect("record serialises"))
        .collect();
    // kill: tear the server down mid-campaign
    handle.stop();
    hub.shutdown();

    // second life: same state dir; the campaign resumes under its id
    let (hub2, handle2) = start_server(&state, 2, 2, 2);
    let client2 = Client::new(handle2.addr());
    let records = drain_outcomes(client2, submitted.id, slots);
    assert_eq!(records.len(), slots, "resumed campaign ran to completion");
    let status: CampaignStatus = client2
        .get(&format!("/campaigns/{}", submitted.id))
        .expect("server reachable")
        .json()
        .expect("status decodes");
    assert_eq!(status.phase, CampaignPhase::Complete);
    // pre-kill outcomes replay byte-identically — wall_time included,
    // because the disk cache returns recorded runs verbatim
    for (i, expected) in pre_kill.iter().enumerate() {
        let replayed = serde_json::to_string(&records[i]).expect("record serialises");
        assert_eq!(&replayed, expected, "outcome {i} diverged across the kill");
    }
    handle2.stop();
    hub2.shutdown();
    let _ = std::fs::remove_dir_all(&state);
}
