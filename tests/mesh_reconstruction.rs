//! End-to-end reconstruction quality: the paper's accuracy axis is about
//! "the generated 3D model in the context of a known ground-truth" — here
//! we verify the extracted mesh actually lies on the synthetic scene's
//! surface.

use slam_kfusion::{KFusionConfig, KinectFusion, SlamAlgorithm};
use slam_scene::presets;
use slambench_suite::test_dataset;

#[test]
fn reconstructed_mesh_lies_on_the_true_surface() {
    let dataset = test_dataset(15);
    let scene = presets::living_room();
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    let mut kf = KinectFusion::new(config.clone(), *dataset.camera(), init);
    for frame in dataset.frames() {
        kf.step_frame(&frame.depth_mm);
    }
    let mesh = kf
        .extract_mesh(0)
        .expect("KinectFusion builds a meshable model");
    assert!(
        mesh.triangle_count() > 500,
        "expected a substantial reconstruction, got {} triangles",
        mesh.triangle_count()
    );
    // distance of each mesh vertex to the true scene surface
    let voxel = config.voxel_size();
    let mut close = 0usize;
    let mut total = 0usize;
    let mut worst = 0.0f32;
    for v in mesh.vertices.iter().step_by(7) {
        let d = scene.distance(*v).abs();
        total += 1;
        if d < 3.0 * voxel {
            close += 1;
        }
        worst = worst.max(d);
    }
    let fraction = close as f32 / total as f32;
    assert!(
        fraction > 0.9,
        "only {:.0}% of mesh vertices are within 3 voxels of the true surface (worst {worst:.3} m)",
        fraction * 100.0
    );
}

#[test]
fn mesh_grows_with_exploration() {
    let dataset = test_dataset(12);
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 96;
    let mut kf = KinectFusion::new(config, *dataset.camera(), init);
    kf.step_frame(&dataset.frames()[0].depth_mm);
    let early = kf.extract_mesh(0).expect("meshable model").surface_area();
    for frame in &dataset.frames()[1..] {
        kf.step_frame(&frame.depth_mm);
    }
    let late = kf.extract_mesh(0).expect("meshable model").surface_area();
    assert!(
        late >= early,
        "seen surface should not shrink: {early} -> {late}"
    );
}
