//! End-to-end guarantees of the slam-trace observability layer.
//!
//! Tracing is an *observer*: enabling it must not change a single output
//! bit, disabling it must cost nothing, and the recorded events must
//! reconstruct the real execution — frame spans containing kernel spans
//! containing the pool workers' band spans, with the engine's cache
//! traffic alongside as counters. These tests pin all of that through
//! the public entry points (`EvalEngine::with_tracer`,
//! `run_pipeline_traced`) and round-trip the Chrome `trace_event`
//! export through a JSON parser.

use slam_kfusion::KFusionConfig;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_trace::{SpanLevel, Tracer};
use slambench::engine::EvalEngine;
use slambench::PipelineRun;

fn tiny_dataset(frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = frames;
    SyntheticDataset::generate(&dc)
}

fn config() -> KFusionConfig {
    KFusionConfig {
        volume_resolution: 48,
        ..KFusionConfig::fast_test()
    }
}

fn pose_bits(run: &PipelineRun) -> Vec<String> {
    run.frames
        .iter()
        .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
        .collect()
}

#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let dataset = tiny_dataset(4);
    let plain = EvalEngine::new().evaluate(&dataset, &config());
    let tracer = Tracer::new();
    let traced = EvalEngine::new()
        .with_tracer(tracer.clone())
        .evaluate(&dataset, &config());
    assert_eq!(pose_bits(&plain), pose_bits(&traced));
    assert_eq!(
        serde_json::to_string(&plain.ate).expect("serialisable ATE"),
        serde_json::to_string(&traced.ate).expect("serialisable ATE"),
    );
    assert_eq!(
        plain.total_workload().total().ops.to_bits(),
        traced.total_workload().total().ops.to_bits(),
    );
    assert!(!tracer.drain().is_empty(), "the traced run recorded events");
}

#[test]
fn spans_nest_frame_kernel_band_across_pool_workers() {
    let dataset = tiny_dataset(3);
    let mut cfg = config();
    cfg.threads = 4; // force the pool so band spans land on workers
    let tracer = Tracer::new();
    let _ = EvalEngine::new()
        .with_tracer(tracer.clone())
        .evaluate(&dataset, &cfg);
    let trace = tracer.drain();

    let frames: Vec<_> = trace
        .spans()
        .filter(|s| s.level == SpanLevel::Frame)
        .collect();
    assert_eq!(frames.len(), 3, "one frame span per processed frame");

    let kernels: Vec<_> = trace
        .spans()
        .filter(|s| s.level == SpanLevel::Kernel)
        .collect();
    assert!(!kernels.is_empty());
    for k in &kernels {
        // every kernel span opened after its frame (global seq order)
        // and ran within the frame's interval
        assert!(
            frames
                .iter()
                .any(|f| f.seq < k.seq && f.start_ns <= k.start_ns && k.end_ns <= f.end_ns),
            "kernel span {k:?} is not nested in any frame span"
        );
    }

    let bands: Vec<_> = trace
        .spans()
        .filter(|s| s.level == SpanLevel::Band)
        .collect();
    assert!(!bands.is_empty(), "pool kernels record band spans");
    for b in &bands {
        // a band belongs to a same-named kernel span that opened first
        assert!(
            kernels.iter().any(|k| k.name == b.name
                && k.seq < b.seq
                && k.start_ns <= b.start_ns
                && b.end_ns <= k.end_ns),
            "band span {b:?} is not nested in a same-named kernel span"
        );
    }
    // the drain is seq-sorted, so parents precede children in iteration
    let seqs: Vec<u64> = trace.spans().map(|s| s.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted, "drained spans come back in open order");
}

#[test]
fn counters_accumulate_pipeline_and_engine_traffic() {
    let dataset = tiny_dataset(3);
    let tracer = Tracer::new();
    let engine = EvalEngine::new().with_tracer(tracer.clone());
    let _ = engine.evaluate(&dataset, &config());
    let trace = tracer.drain();
    assert!(trace.counter_total("icp.iterations") > 0);
    assert!(trace.counter_total("pool.tasks") > 0);
    assert_eq!(trace.counter_total("engine.cache_miss"), 1);
    assert_eq!(trace.counter_total("engine.cache_hit"), 0);
}

#[test]
fn chrome_json_from_a_run_parses_back_with_nested_spans_and_cache_hits() {
    let dataset = tiny_dataset(3);
    let tracer = Tracer::new();
    let engine = EvalEngine::new().with_tracer(tracer.clone());
    let _ = engine.evaluate(&dataset, &config());
    let _ = engine.evaluate(&dataset, &config()); // a cache hit
    let json = tracer.drain().to_chrome_json();

    let v: serde_json::Value = serde_json::from_str(&json).expect("chrome trace parses back");
    assert_eq!(v["displayTimeUnit"], "ms");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let complete = |e: &&serde_json::Value| e["ph"] == "X";
    let frames: Vec<_> = events
        .iter()
        .filter(complete)
        .filter(|e| e["cat"] == "frame")
        .collect();
    assert_eq!(frames.len(), 3, "one frame event per processed frame");
    let kernels: Vec<_> = events
        .iter()
        .filter(complete)
        .filter(|e| e["cat"] == "kernel")
        .collect();
    assert!(!kernels.is_empty());
    let span = |e: &serde_json::Value| {
        (
            e["ts"].as_f64().expect("ts"),
            e["dur"].as_f64().expect("dur"),
        )
    };
    for k in &kernels {
        let (kts, kdur) = span(k);
        assert!(
            frames.iter().any(|f| {
                let (fts, fdur) = span(f);
                fts <= kts && kts + kdur <= fts + fdur
            }),
            "kernel event does not nest inside any frame event"
        );
    }

    let hit_total: u64 = events
        .iter()
        .filter(|e| e["ph"] == "C" && e["name"] == "engine.cache_hit")
        .map(|e| e["args"]["value"].as_u64().unwrap_or(0))
        .sum();
    assert!(hit_total > 0, "the second evaluate was a cache hit");
}

#[test]
fn disabled_tracer_is_a_true_noop_end_to_end() {
    let dataset = tiny_dataset(3);
    let off = Tracer::disabled();
    assert!(!off.enabled());
    // xtask-allow: engine-only — reason: pinning that the traced raw runner records nothing when disabled
    let run = slambench::run_pipeline_traced(&dataset, &config(), &off);
    assert_eq!(run.frames.len(), 3);
    assert!(off.drain().is_empty());
    // the default engine is untraced and stays silent too
    let engine = EvalEngine::new();
    let _ = engine.evaluate(&dataset, &config());
    assert!(!engine.tracer().enabled());
    assert!(engine.tracer().drain().is_empty());
}
