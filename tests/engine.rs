//! The evaluation engine's contract, end to end.
//!
//! * **Batch = serial, bitwise.** `evaluate_batch` must return
//!   bit-identical `PipelineRun`s versus one-at-a-time serial evaluation,
//!   in any batch order and at any thread budget. The *only* field
//!   allowed to differ is `FrameRecord::wall_time` (host wall-clock).
//! * **Cache hits are clones.** A repeated request returns the cached
//!   struct verbatim — including its recorded wall times.
//! * **The disk cache is safe.** Entries round-trip across engine
//!   instances, and corrupt or truncated files degrade to re-evaluation,
//!   never to a panic or a wrong answer.

use slam_kfusion::exec;
use slam_kfusion::{AlgoId, KFusionConfig};
use slambench::engine::{EvalEngine, EvalError};
use slambench::run::PipelineRun;
use slambench_suite::test_dataset;

/// A canonical JSON form with the one nondeterministic field zeroed, so
/// equality of strings is bit-equality of everything else (serde_json is
/// built with `float_roundtrip`).
fn canon(run: &PipelineRun) -> String {
    let mut clean = run.clone();
    for frame in &mut clean.frames {
        frame.wall_time = 0.0;
    }
    serde_json::to_string(&clean).expect("serialisable run")
}

/// Five distinct configurations spanning the knobs the cache key covers.
fn batch_configs() -> Vec<KFusionConfig> {
    let base = KFusionConfig::fast_test();
    let mut out = vec![base.clone()];
    let mut a = base.clone();
    a.volume_resolution = 32;
    out.push(a);
    let mut b = base.clone();
    b.compute_size_ratio = 2;
    out.push(b);
    let mut c = base.clone();
    c.pyramid_iterations = [3, 2, 1];
    out.push(c);
    let mut d = base;
    d.integration_rate = 2;
    out.push(d);
    out
}

#[test]
fn batch_is_bit_identical_to_serial_at_any_thread_budget_and_order() {
    let dataset = test_dataset(4);
    let configs = batch_configs();

    // serial reference: one at a time, single-threaded
    let reference: Vec<String> = exec::with_thread_budget(1, || {
        configs
            .iter()
            .map(|c| canon(&EvalEngine::new().evaluate(&dataset, c)))
            .collect()
    });

    for budget in [1usize, 2, 7] {
        let runs = exec::with_thread_budget(budget, || {
            EvalEngine::new().evaluate_batch(&dataset, &configs)
        });
        for (i, run) in runs.iter().enumerate() {
            assert_eq!(
                canon(run),
                reference[i],
                "run {i} diverged at thread budget {budget}"
            );
        }
    }

    // any batch order, including in-batch duplicates
    let order = [4usize, 2, 0, 3, 1, 2, 2];
    let shuffled: Vec<KFusionConfig> = order.iter().map(|&i| configs[i].clone()).collect();
    let runs = EvalEngine::new().evaluate_batch(&dataset, &shuffled);
    for (slot, (&i, run)) in order.iter().zip(&runs).enumerate() {
        assert_eq!(
            canon(run),
            reference[i],
            "shuffled slot {slot} (config {i}) diverged"
        );
    }
}

#[test]
fn cache_hit_returns_the_identical_struct() {
    let dataset = test_dataset(3);
    let engine = EvalEngine::new();
    let config = KFusionConfig::fast_test();
    let first = engine.evaluate(&dataset, &config);
    let second = engine.evaluate(&dataset, &config);
    // full equality, wall times included: a hit is a clone, not a re-run
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );
    assert_eq!(engine.stats().hits, 1);
    assert_eq!(engine.stats().misses, 1);
}

/// A scratch directory unique to this test process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("slambench-engine-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn disk_cache_round_trips_across_engine_instances() {
    let dir = scratch_dir("roundtrip");
    let dataset = test_dataset(3);
    let config = KFusionConfig::fast_test();

    let writer = EvalEngine::with_disk_cache(&dir);
    let first = writer.evaluate(&dataset, &config);
    assert_eq!(writer.stats().misses, 1);

    let reader = EvalEngine::with_disk_cache(&dir);
    assert!(reader.is_cached(&dataset, &config));
    let second = reader.evaluate(&dataset, &config);
    let stats = reader.stats();
    assert_eq!(stats.misses, 0, "disk entry must serve the request");
    assert_eq!(stats.disk_hits + stats.hits, 1);
    // byte-identical, wall times included: the run was persisted whole
    assert_eq!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&second).unwrap()
    );

    // a different config is still a miss
    let mut other = config.clone();
    other.volume_resolution = 32;
    assert!(!reader.is_cached(&dataset, &other));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_truncated_disk_entries_degrade_to_misses() {
    let dir = scratch_dir("corrupt");
    let dataset = test_dataset(3);
    let config = KFusionConfig::fast_test();

    let writer = EvalEngine::with_disk_cache(&dir);
    let reference = writer.evaluate(&dataset, &config);

    for (label, mangle) in [
        ("garbage", b"not json at all {{{".to_vec() as Vec<u8>),
        ("empty", Vec::new()),
    ] {
        for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
            std::fs::write(entry.expect("dir entry").path(), &mangle).expect("writable");
        }
        let reader = EvalEngine::with_disk_cache(&dir);
        let run = reader.evaluate(&dataset, &config); // must not panic
        assert_eq!(
            reader.stats().misses,
            1,
            "{label}: a bad file must read as a miss"
        );
        assert_eq!(
            canon(&run),
            canon(&reference),
            "{label}: re-evaluation diverged"
        );
    }

    // truncation: chop a freshly persisted valid entry in half
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("readable");
        std::fs::write(&path, &text[..text.len() / 2]).expect("writable");
    }
    let reader = EvalEngine::with_disk_cache(&dir);
    let run = reader.evaluate(&dataset, &config);
    assert_eq!(
        reader.stats().misses,
        1,
        "truncated file must read as a miss"
    );
    assert_eq!(canon(&run), canon(&reference));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn typed_errors_surface_without_evaluating() {
    let dataset = test_dataset(3);
    let engine = EvalEngine::new();
    let mut bad = KFusionConfig::fast_test();
    bad.volume_resolution = 7; // below the [16, 1024] range
    let err = engine
        .try_evaluate_batch(&dataset, &[KFusionConfig::fast_test(), bad])
        .expect_err("invalid config must be rejected");
    assert!(matches!(err, EvalError::InvalidConfig(_)));
    assert_eq!(
        engine.stats().requests(),
        0,
        "validation failure must reject the whole batch before any run"
    );

    let empty = test_dataset(0);
    let err = engine
        .try_evaluate(&empty, &KFusionConfig::fast_test())
        .expect_err("empty dataset must be rejected");
    assert_eq!(err, EvalError::EmptyDataset);
}

#[test]
fn algorithms_never_share_or_alias_cache_entries() {
    let dir = scratch_dir("algo-keys");
    let dataset = test_dataset(3);
    let config = KFusionConfig::fast_test();

    // the same (dataset, config) evaluated by both algorithms through a
    // SHARED disk-cache directory
    let kfusion = EvalEngine::with_disk_cache(&dir).with_algorithm(AlgoId::KinectFusion);
    let kf_run = kfusion.evaluate(&dataset, &config);
    assert_eq!(kfusion.stats().misses, 1);

    let odometry = EvalEngine::with_disk_cache(&dir).with_algorithm(AlgoId::PointOdometry);
    assert!(
        !odometry.is_cached(&dataset, &config),
        "a KinectFusion entry must never answer a point-odometry request"
    );
    let odo_run = odometry.evaluate(&dataset, &config);
    assert_eq!(
        odometry.stats().misses,
        1,
        "the odometry engine must evaluate, not alias the KinectFusion entry"
    );

    // two algorithms, two distinct files under the same directory
    let files: Vec<_> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").file_name())
        .collect();
    assert_eq!(files.len(), 2, "each algorithm persists its own entry");

    // the runs really are different computations
    assert_eq!(kf_run.algorithm, AlgoId::KinectFusion);
    assert_eq!(odo_run.algorithm, AlgoId::PointOdometry);
    assert_ne!(
        canon(&kf_run),
        canon(&odo_run),
        "the two algorithms must not produce bit-identical runs"
    );

    // fresh engines over the shared directory each warm-start from their
    // own entry
    for (algo, reference) in [
        (AlgoId::KinectFusion, &kf_run),
        (AlgoId::PointOdometry, &odo_run),
    ] {
        let reader = EvalEngine::with_disk_cache(&dir).with_algorithm(algo);
        assert!(reader.is_cached(&dataset, &config), "{algo}");
        let run = reader.evaluate(&dataset, &config);
        assert_eq!(reader.stats().misses, 0, "{algo}: disk entry must serve");
        assert_eq!(
            serde_json::to_string(&run).unwrap(),
            serde_json::to_string(reference).unwrap(),
            "{algo}: the persisted run must round-trip whole"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_v1_disk_entries_read_as_misses_not_aliased_hits() {
    let dir = scratch_dir("legacy-v1");
    let dataset = test_dataset(3);
    let config = KFusionConfig::fast_test();

    let writer = EvalEngine::with_disk_cache(&dir);
    let reference = writer.evaluate(&dataset, &config);

    // rewrite every entry as a version-1 file: no `version`, no
    // `algorithm` — the pre-abstraction layout
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("readable");
        let legacy = text
            .replace("\"version\":2,", "")
            .replace("\"algorithm\":\"kfusion\",", "");
        assert_ne!(legacy, text, "the rewrite must strip both fields");
        std::fs::write(&path, legacy).expect("writable");
    }

    let reader = EvalEngine::with_disk_cache(&dir);
    let run = reader.evaluate(&dataset, &config); // must not panic
    assert_eq!(
        reader.stats().misses,
        1,
        "a v1 entry must re-key as a miss, never alias"
    );
    assert_eq!(canon(&run), canon(&reference));

    let _ = std::fs::remove_dir_all(&dir);
}
