//! Hostile non-finite sensor input, end to end.
//!
//! The millimetre wire format cannot carry NaN or Inf, so the laced
//! frames of the adversarial suite enter through the float-depth
//! pipeline entry point ([`KinectFusion::process_depth_frame`]). A
//! correct pipeline treats every non-finite pixel as a hole: nothing may
//! escape into the TSDF or weight buffers, the estimated poses, or the
//! ATE — on either volume backend. Before the kernel guards, a single
//! NaN depth pixel wrote NaN into the voxel running average permanently
//! (`d <= 0.0` is false for NaN).

use rand::rngs::StdRng;
use rand::SeedableRng;
use slam_kfusion::image::DepthImage;
use slam_kfusion::{KFusionConfig, KinectFusion, Volume, VolumeBackend};
use slam_math::Vec3;
use slam_metrics::ate::{ate, AteOptions};
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::lace_non_finite;

fn laced_dataset() -> SyntheticDataset {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = 6;
    SyntheticDataset::generate(&dc)
}

fn config(backend: VolumeBackend) -> KFusionConfig {
    KFusionConfig {
        volume_resolution: 48,
        volume_backend: backend,
        ..KFusionConfig::fast_test()
    }
}

fn assert_finite_pose(pose: &slam_math::Se3, what: &str) {
    let t = pose.translation();
    assert!(
        t.x.is_finite() && t.y.is_finite() && t.z.is_finite(),
        "{what}: non-finite translation {t:?}"
    );
    let p = pose.transform_point(Vec3::new(1.0, 1.0, 1.0));
    assert!(
        p.x.is_finite() && p.y.is_finite() && p.z.is_finite(),
        "{what}: non-finite rotation"
    );
}

/// Runs the laced sequence on one backend and checks every escape path.
fn run_laced(backend: VolumeBackend) {
    let dataset = laced_dataset();
    let cfg = config(backend);
    let camera = *dataset.camera();
    let init = dataset.frames()[0].ground_truth;
    let mut alg = KinectFusion::new(cfg, camera, init);
    let mut rng = StdRng::seed_from_u64(0xAD5E_F10A);
    let mut est = Vec::new();
    let mut gt = Vec::new();
    for frame in dataset.frames() {
        // the metre-unit frame a float-depth sensor would deliver,
        // laced with NaN/+Inf/-Inf pixels
        let mut depth_m: Vec<f32> = frame
            .depth_mm
            .iter()
            .map(|&mm| f32::from(mm) / 1000.0)
            .collect();
        lace_non_finite(&mut depth_m, 0.05, &mut rng);
        let image = DepthImage::from_vec(camera.width, camera.height, depth_m);
        let result = alg.process_depth_frame(&image);
        assert_finite_pose(&result.pose, "estimated pose");
        est.push(result.pose);
        gt.push(frame.ground_truth);
    }

    // no NaN/Inf in the fused model: every voxel's tsdf and weight
    let volume = alg.volume();
    let res = volume.resolution();
    for z in 0..res {
        for y in 0..res {
            for x in 0..res {
                let t = volume.voxel_tsdf(x, y, z);
                let w = volume.voxel_weight(x, y, z);
                assert!(t.is_finite(), "tsdf[{x},{y},{z}] = {t} on {backend}");
                assert!(w.is_finite(), "weight[{x},{y},{z}] = {w} on {backend}");
            }
        }
    }
    assert!(
        volume.occupied_voxels() > 0,
        "laced frames still carry enough signal to fuse on {backend}"
    );

    // and none into the trajectory error
    let result = ate(&est, &gt, AteOptions::default()).expect("non-empty trajectories");
    assert!(
        result.max.is_finite(),
        "ATE max = {} on {backend}",
        result.max
    );
    assert!(result.mean.is_finite(), "ATE mean on {backend}");
    assert!(
        result.errors.iter().all(|e| e.is_finite()),
        "per-frame ATE on {backend}"
    );
}

#[test]
fn laced_frames_never_poison_the_dense_backend() {
    run_laced(VolumeBackend::Dense);
}

#[test]
fn laced_frames_never_poison_the_sparse_backend() {
    run_laced(VolumeBackend::Sparse);
}

#[test]
fn float_and_millimetre_entries_agree_on_clean_frames() {
    // on a NaN-free frame the float entry is the mm entry minus the
    // quantisation step: poses must stay bit-identical when fed the
    // exact mm→m conversion the pipeline itself performs
    let dataset = laced_dataset();
    let camera = *dataset.camera();
    let init = dataset.frames()[0].ground_truth;
    let mut via_mm = KinectFusion::new(config(VolumeBackend::Dense), camera, init);
    let mut via_m = KinectFusion::new(config(VolumeBackend::Dense), camera, init);
    for frame in dataset.frames() {
        // xtask-allow: algorithm-boundary — reason: comparing the concrete mm and float entry points is the point of this test
        let a = via_mm.process_frame(&frame.depth_mm);
        let depth_m: Vec<f32> = frame
            .depth_mm
            .iter()
            .map(|&mm| f32::from(mm) / 1000.0)
            .collect();
        let image = DepthImage::from_vec(camera.width, camera.height, depth_m);
        let b = via_m.process_depth_frame(&image);
        assert_eq!(
            a.pose.translation().x.to_bits(),
            b.pose.translation().x.to_bits(),
            "frame {}",
            a.frame_index
        );
        assert_eq!(a.tracked, b.tracked);
    }
}
