//! Integration of the metrics crate with real pipeline output.

use slam_kfusion::KFusionConfig;
use slam_math::Se3;
use slam_metrics::ate::{ate, Alignment, AteOptions};
use slam_metrics::rpe::rpe;
use slambench::engine::EvalEngine;
use slambench_suite::test_dataset;

fn run_poses(frames: usize) -> (Vec<Se3>, Vec<Se3>) {
    let dataset = test_dataset(frames);
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    let run = EvalEngine::new().evaluate(&dataset, &config);
    (
        run.frames.iter().map(|f| f.pose).collect(),
        run.frames.iter().map(|f| f.ground_truth).collect(),
    )
}

#[test]
fn ate_and_rpe_agree_on_quality() {
    let (est, gt) = run_poses(15);
    let a = ate(&est, &gt, AteOptions::default()).unwrap();
    let r = rpe(&est, &gt, 1).unwrap();
    // a tracking run with small ATE must also have small per-frame drift
    assert!(a.max < 0.05, "ATE {}", a.max);
    assert!(r.translation_rmse < 0.02, "RPE {}", r.translation_rmse);
    // drift per frame is no larger than the worst absolute error
    assert!(r.translation_max <= 2.0 * a.max + 1e-6);
}

#[test]
fn alignment_modes_are_ordered() {
    let (est, gt) = run_poses(15);
    let none = ate(
        &est,
        &gt,
        AteOptions {
            alignment: Alignment::None,
        },
    )
    .unwrap();
    let first = ate(
        &est,
        &gt,
        AteOptions {
            alignment: Alignment::FirstPose,
        },
    )
    .unwrap();
    let horn = ate(
        &est,
        &gt,
        AteOptions {
            alignment: Alignment::Horn,
        },
    )
    .unwrap();
    // Horn minimises the rms over rigid alignments, so it is at least as
    // good as any other registration of the same trajectory
    assert!(horn.rmse <= none.rmse + 1e-9);
    assert!(horn.rmse <= first.rmse + 1e-9);
}

#[test]
fn rpe_interval_sweep_is_monotone_in_expectation() {
    let (est, gt) = run_poses(20);
    let r1 = rpe(&est, &gt, 1).unwrap();
    let r5 = rpe(&est, &gt, 5).unwrap();
    // longer intervals accumulate at least as much drift as single steps
    // for a non-degenerate run (allow slack for error cancellation)
    assert!(r5.translation_rmse >= r1.translation_rmse * 0.5);
}
