//! Integration of the phone-fleet study with the pipeline.

use slam_kfusion::KFusionConfig;
use slam_power::fleet::phone_fleet;
use slambench::fleet::{fleet_speedups, memory_capped_volume};
use slambench_suite::test_dataset;

fn configs() -> (KFusionConfig, KFusionConfig) {
    let default_cfg = KFusionConfig {
        volume_resolution: 192,
        ..KFusionConfig::fast_test()
    };
    let tuned_cfg = KFusionConfig {
        volume_resolution: 64,
        compute_size_ratio: 2,
        pyramid_iterations: [3, 2, 2],
        ..KFusionConfig::fast_test()
    };
    (default_cfg, tuned_cfg)
}

#[test]
fn fleet_study_is_reproducible() {
    let dataset = test_dataset(4);
    let (d, t) = configs();
    let fleet = phone_fleet(2018);
    let a = fleet_speedups(&dataset, &d, &t, &fleet);
    let b = fleet_speedups(&dataset, &d, &t, &fleet);
    assert_eq!(a.entries.len(), b.entries.len());
    assert!(a.skipped.is_empty() && b.skipped.is_empty());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.index, y.index);
        assert!((x.speedup - y.speedup).abs() < 1e-12);
    }
}

#[test]
fn memory_caps_respect_the_request() {
    for ram in [256, 512, 1024, 2048, 4096] {
        for requested in [64, 96, 128, 192, 256] {
            let v = memory_capped_volume(requested, ram);
            assert!(v <= requested.max(64));
            // the cap always returns something runnable
            assert!(v >= 64);
        }
    }
}

#[test]
fn entries_serialize() {
    let dataset = test_dataset(3);
    let (d, t) = configs();
    let fleet = phone_fleet(2018);
    let entries = fleet_speedups(&dataset, &d, &t, &fleet[..5]).entries;
    let json = serde_json::to_string(&entries).unwrap();
    assert!(json.contains("speedup"));
    let back: Vec<slambench::fleet::FleetEntry> = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 5);
}

#[test]
fn fragile_gpu_phones_see_smaller_gains() {
    let dataset = test_dataset(4);
    let (d, t) = configs();
    let fleet = phone_fleet(2018);
    let entries = fleet_speedups(&dataset, &d, &t, &fleet).entries;
    let fragile: Vec<f64> = fleet
        .iter()
        .zip(&entries)
        .filter(|(p, _)| p.gpu_fragile)
        .map(|(_, e)| e.speedup)
        .collect();
    let robust: Vec<f64> = fleet
        .iter()
        .zip(&entries)
        .filter(|(p, _)| !p.gpu_fragile && p.device.has_usable_gpu())
        .map(|(_, e)| e.speedup)
        .collect();
    if !fragile.is_empty() && !robust.is_empty() {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&fragile) < mean(&robust),
            "fragile drivers should blunt the tuned config ({} vs {})",
            mean(&fragile),
            mean(&robust)
        );
    }
}
