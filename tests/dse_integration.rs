//! Integration of the DSE engine with the real benchmark pipeline.

use slam_dse::knowledge::{KnowledgeTree, LabelledConfigs};
use slam_power::devices::odroid_xu3;
use slambench::config_space::{decode_config, slambench_space};
use slambench::explore::{explore, measure, random_sweep, ExploreOptions};
use slambench_suite::test_dataset;

#[test]
fn exploration_is_deterministic() {
    let dataset = test_dataset(5);
    let device = odroid_xu3();
    let a = explore(&dataset, &device, &ExploreOptions::fast());
    let b = explore(&dataset, &device, &ExploreOptions::fast());
    assert_eq!(a.measured.len(), b.measured.len());
    for (x, y) in a.measured.iter().zip(&b.measured) {
        assert_eq!(x.x, y.x);
        assert!((x.runtime_s - y.runtime_s).abs() < 1e-12);
    }
}

#[test]
fn every_measured_config_is_valid_and_finite() {
    let dataset = test_dataset(5);
    let device = odroid_xu3();
    let outcome = explore(&dataset, &device, &ExploreOptions::fast());
    for m in &outcome.measured {
        m.config.validate().expect("explored config must be valid");
        assert!(m.runtime_s.is_finite() && m.runtime_s > 0.0);
        assert!(m.max_ate_m.is_finite() && m.max_ate_m >= 0.0);
        assert!(m.watts.is_finite() && m.watts > 0.0);
    }
}

#[test]
fn pareto_of_outcome_is_consistent_with_measured() {
    let dataset = test_dataset(5);
    let device = odroid_xu3();
    let outcome = explore(&dataset, &device, &ExploreOptions::fast());
    let front = outcome.pareto();
    assert!(!front.is_empty());
    // every front member is one of the measured points
    for f in &front {
        assert!(outcome.measured.iter().any(|m| m.x == f.x));
    }
}

#[test]
fn knowledge_tree_over_real_measurements() {
    let dataset = test_dataset(5);
    let device = odroid_xu3();
    let measured = random_sweep(&dataset, &device, 30, 5);
    // label on speed alone so both classes are guaranteed non-empty on a
    // tiny budget: faster than the median vs not
    let mut runtimes: Vec<f64> = measured.iter().map(|m| m.runtime_s).collect();
    runtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = runtimes[runtimes.len() / 2];
    let data = LabelledConfigs {
        x: measured.iter().map(|m| m.x.clone()).collect(),
        labels: measured
            .iter()
            .map(|m| f64::from(u8::from(m.runtime_s < median)))
            .collect(),
        class_names: vec!["slow".into(), "fast".into()],
    };
    let tree = KnowledgeTree::fit(&slambench_space(), &data, 3);
    // the dominant cost driver must appear among the splits
    let splits = tree.split_parameters();
    assert!(!splits.is_empty(), "tree learned nothing");
    assert!(
        splits.iter().any(|(n, _)| n == "volume_resolution"
            || n == "compute_size_ratio"
            || n == "mu"
            || n == "integration_rate"
            || n == "pyramid_l0"),
        "splits {splits:?} miss every plausible runtime driver"
    );
    assert!(tree.accuracy(&data) > 0.6);
}

#[test]
fn measure_matches_direct_decode() {
    let dataset = test_dataset(4);
    let device = odroid_xu3();
    let space = slambench_space();
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let x = space.sample(&mut rng);
    let m = measure(&dataset, &device, &x);
    let direct = decode_config(&x);
    assert_eq!(m.config, direct);
}
