//! Failure injection: the pipeline must degrade gracefully, not panic,
//! when the sensor misbehaves.

use slam_kfusion::{KFusionConfig, KinectFusion, SlamAlgorithm};
use slam_math::camera::PinholeCamera;
use slambench_suite::{noisy_test_dataset, test_dataset};

#[test]
fn survives_blackout_frames_and_recovers() {
    let dataset = test_dataset(12);
    let camera = *dataset.camera();
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    let mut kf = KinectFusion::new(config, camera, init);
    let blackout = vec![0u16; camera.pixel_count()];
    let mut lost_during_blackout = 0;
    for (i, frame) in dataset.frames().iter().enumerate() {
        let result = if (5..8).contains(&i) {
            kf.step_frame(&blackout)
        } else {
            kf.step_frame(&frame.depth_mm)
        };
        if (5..8).contains(&i) && !result.tracked {
            lost_during_blackout += 1;
        }
        // after the blackout the camera has barely moved (1 cm/frame), so
        // tracking must re-acquire
        if i >= 9 {
            assert!(result.tracked, "failed to recover at frame {i}");
        }
    }
    assert!(
        lost_during_blackout > 0,
        "blackout frames should be flagged as lost"
    );
}

#[test]
fn survives_saturated_depth() {
    let camera = PinholeCamera::tiny();
    let mut kf = KinectFusion::new(KFusionConfig::fast_test(), camera, slam_math::Se3::IDENTITY);
    // all pixels at the far limit of u16
    let saturated = vec![u16::MAX; camera.pixel_count()];
    let r = kf.step_frame(&saturated);
    // frame 0 bootstraps regardless; the pipeline must simply not panic
    assert_eq!(r.frame_index, 0);
    let r = kf.step_frame(&saturated);
    assert_eq!(r.frame_index, 1);
}

#[test]
fn survives_salt_and_pepper_depth() {
    let dataset = test_dataset(6);
    let camera = *dataset.camera();
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    let mut kf = KinectFusion::new(config, camera, init);
    for frame in dataset.frames() {
        let mut depth = frame.depth_mm.clone();
        // corrupt every 7th pixel with extreme values
        for (i, d) in depth.iter_mut().enumerate() {
            if i % 7 == 0 {
                *d = if i % 14 == 0 { 0 } else { 60000 };
            }
        }
        let _ = kf.step_frame(&depth);
    }
    // the run finished; tracking may degrade but must not corrupt state
    assert_eq!(kf.frames_processed(), 6);
    assert!(kf.current_pose().translation().is_finite());
}

#[test]
fn heavy_sensor_noise_still_tracks() {
    let dataset = noisy_test_dataset(12);
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    let mut kf = KinectFusion::new(config, *dataset.camera(), init);
    let mut worst = 0.0f32;
    for frame in dataset.frames() {
        let r = kf.step_frame(&frame.depth_mm);
        worst = worst.max(r.pose.translation_distance(&frame.ground_truth));
    }
    assert!(worst < 0.08, "noisy tracking error {worst}");
}

#[test]
fn zero_iteration_levels_are_tolerated() {
    let dataset = test_dataset(5);
    let init = dataset.frames()[0].ground_truth;
    let mut config = KFusionConfig::fast_test();
    config.pyramid_iterations = [0, 0, 2]; // only the coarsest level
    config.volume_resolution = 128;
    let mut kf = KinectFusion::new(config, *dataset.camera(), init);
    for frame in dataset.frames() {
        let _ = kf.step_frame(&frame.depth_mm);
    }
    assert_eq!(kf.frames_processed(), 5);
}
