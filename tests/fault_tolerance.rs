//! Fault-tolerant evaluation: injected run panics, deadlines, retry and
//! quarantine, disk-cache IO errors, and checkpoint/resume for long
//! sweeps. Every fault here comes from a seeded [`FaultPlan`], so each
//! scenario is bit-reproducible at any thread count.

use slam_kfusion::KFusionConfig;
use slam_power::devices::odroid_xu3;
use slam_power::fleet::phone_fleet;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;
use slambench::checkpoint::{CheckpointOptions, SweepProgress};
use slambench::engine::{EvalEngine, EvalError, RunOutcome};
use slambench::explore::{
    explore_checkpointed, explore_with_engine, measure, random_sweep_checkpointed, ExploreOptions,
};
use slambench::fault::{Deadline, FaultPlan, FaultPolicy, MockRunClock, RetryPolicy};
use slambench::fleet::{fleet_speedups_with_engine, memory_capped_volume};
use slambench::suite::{run_suite_with_engine, standard_suite, SuiteError};
use slambench::{config_space::encode_config, ExploreOutcome};
use std::path::PathBuf;
use std::sync::Arc;

fn tiny_dataset(frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = frames;
    dc.noise = DepthNoiseModel::ideal();
    SyntheticDataset::generate(&dc)
}

fn config_with_volume(vr: usize) -> KFusionConfig {
    let mut c = KFusionConfig::fast_test();
    c.volume_resolution = vr;
    c
}

/// A unique scratch directory per test (checkpoints, disk caches).
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slambench-ft-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// run isolation: a panicking run fails its slot, nothing else
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_fails_only_its_slot_and_engine_survives() {
    let dataset = tiny_dataset(3);
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![96],
        ..FaultPlan::default()
    });
    let configs = [
        config_with_volume(32),
        config_with_volume(96), // cursed
        config_with_volume(64),
    ];
    let outcomes = engine
        .try_evaluate_batch_outcomes(&dataset, &configs)
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].is_done());
    assert!(outcomes[2].is_done());
    let q = outcomes[1].failure().unwrap();
    assert_eq!(q.config.volume_resolution, 96);
    assert_eq!(q.attempts, 1);
    assert!(q.cause.contains("injected persistent fault"));
    let stats = engine.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.misses, 3);

    // the mid-batch panic must not poison the engine: the same engine
    // keeps serving healthy configurations
    let again = engine.evaluate(&dataset, &config_with_volume(32));
    assert_eq!(again.frames.len(), 3);
    assert_eq!(engine.stats().hits, 1);
}

#[test]
fn batch_api_surfaces_a_failed_slot_as_a_typed_error() {
    let dataset = tiny_dataset(3);
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![96],
        ..FaultPlan::default()
    });
    let configs = [config_with_volume(32), config_with_volume(96)];
    let err = engine.try_evaluate_batch(&dataset, &configs).unwrap_err();
    let EvalError::RunFailed { config, cause } = err else {
        unreachable!("expected RunFailed, got {err:?}");
    };
    assert_eq!(config.volume_resolution, 96);
    assert!(cause.contains("injected persistent fault"));
}

#[test]
fn quarantined_configs_fail_fast_on_later_requests() {
    let dataset = tiny_dataset(3);
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![96],
        ..FaultPlan::default()
    });
    let cursed = [config_with_volume(96)];
    let first = engine
        .try_evaluate_batch_outcomes(&dataset, &cursed)
        .unwrap();
    assert!(first[0].failure().is_some());
    assert_eq!(engine.stats().misses, 1);

    // the second request is answered from the quarantine record: no
    // execution, no retry, same typed outcome
    let second = engine
        .try_evaluate_batch_outcomes(&dataset, &cursed)
        .unwrap();
    assert!(second[0].failure().is_some());
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "quarantine must prevent re-execution");
    assert_eq!(stats.quarantined, 1);
    assert_eq!(engine.quarantined().len(), 1);
}

// ---------------------------------------------------------------------------
// retry: transient faults recover deterministically
// ---------------------------------------------------------------------------

#[test]
fn transient_fault_recovers_via_retry_and_result_is_unaffected() {
    let dataset = tiny_dataset(3);
    let config = config_with_volume(32);
    let clean = EvalEngine::new().evaluate(&dataset, &config);

    // scan seeds for one whose first attempt panics and second succeeds;
    // each seed's behaviour is deterministic, so the scan is stable
    let mut recovered_seed = None;
    for seed in 0..64 {
        let engine = EvalEngine::new()
            .with_policy(FaultPolicy {
                retry: RetryPolicy::retries(1),
                ..FaultPolicy::default()
            })
            .with_fault_plan(FaultPlan {
                seed,
                transient_panic_rate: 0.5,
                ..FaultPlan::default()
            });
        let run = engine.try_evaluate(&dataset, &config);
        // retries == 1 alone also matches "retried and failed again";
        // demand the retry actually recovered the run
        if engine.stats().retries == 1 && run.is_ok() {
            let run = run.unwrap();
            // the retried run is bit-identical to a fault-free one
            assert_eq!(run.ate.errors, clean.ate.errors);
            assert_eq!(engine.stats().failed, 0);
            recovered_seed = Some(seed);
            break;
        }
    }
    let seed = recovered_seed.unwrap();

    // same seed, fresh engine: the exact same fault pattern replays
    let engine = EvalEngine::new()
        .with_policy(FaultPolicy {
            retry: RetryPolicy::retries(1),
            ..FaultPolicy::default()
        })
        .with_fault_plan(FaultPlan {
            seed,
            transient_panic_rate: 0.5,
            ..FaultPlan::default()
        });
    let _ = engine.evaluate(&dataset, &config);
    assert_eq!(engine.stats().retries, 1);
}

#[test]
fn persistent_fault_exhausts_retries_and_counts_attempts() {
    let dataset = tiny_dataset(3);
    let engine = EvalEngine::new()
        .with_policy(FaultPolicy {
            retry: RetryPolicy::retries(2),
            ..FaultPolicy::default()
        })
        .with_fault_plan(FaultPlan {
            panic_on_volume: vec![96],
            ..FaultPlan::default()
        });
    let outcomes = engine
        .try_evaluate_batch_outcomes(&dataset, &[config_with_volume(96)])
        .unwrap();
    let q = outcomes[0].failure().unwrap();
    assert_eq!(q.attempts, 3, "all allowed attempts must be consumed");
    let stats = engine.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.failed, 1);
}

// ---------------------------------------------------------------------------
// deadlines: runaway configurations are cut off deterministically
// ---------------------------------------------------------------------------

#[test]
fn wall_deadline_times_out_runs_deterministically_on_mock_clock() {
    let dataset = tiny_dataset(6);
    let make_engine = || {
        EvalEngine::new()
            .with_policy(FaultPolicy {
                deadline: Deadline::wall_ns(300),
                ..FaultPolicy::default()
            })
            .with_run_clock(Arc::new(MockRunClock { step_ns: 100 }))
    };
    let engine = make_engine();
    let outcomes = engine
        .try_evaluate_batch_outcomes(&dataset, &[config_with_volume(32)])
        .unwrap();
    let RunOutcome::TimedOut(run) = &outcomes[0] else {
        unreachable!("expected TimedOut, got {:?}", outcomes[0]);
    };
    // per-run clock: one read at start + one per budget check, 100 ns
    // each → the check before frame 3 sees 300 ns elapsed
    assert_eq!(run.frames.len(), 3);
    assert_eq!(engine.stats().timed_out, 1);

    // timed-out runs are never cached: a later request re-evaluates
    let again = engine
        .try_evaluate_batch_outcomes(&dataset, &[config_with_volume(32)])
        .unwrap();
    assert!(matches!(again[0], RunOutcome::TimedOut(_)));
    assert_eq!(engine.stats().misses, 2);
    assert_eq!(engine.stats().hits, 0);

    // a fresh engine with the same mock clock truncates identically,
    // even with the batch running other slots concurrently
    let batch = [
        config_with_volume(32),
        config_with_volume(64),
        config_with_volume(96),
    ];
    let concurrent = make_engine()
        .try_evaluate_batch_outcomes(&dataset, &batch)
        .unwrap();
    for outcome in &concurrent {
        let RunOutcome::TimedOut(r) = outcome else {
            unreachable!("expected TimedOut, got {outcome:?}");
        };
        assert_eq!(r.frames.len(), 3);
    }
    assert_eq!(concurrent[0].run().unwrap().ate.errors, run.ate.errors);
}

#[test]
fn slow_run_injection_trips_the_deadline_only_for_targeted_volumes() {
    let dataset = tiny_dataset(6);
    let engine = EvalEngine::new()
        .with_policy(FaultPolicy {
            deadline: Deadline::wall_ns(2_000),
            ..FaultPolicy::default()
        })
        .with_run_clock(Arc::new(MockRunClock { step_ns: 100 }))
        .with_fault_plan(FaultPlan {
            slow_on_volume: vec![64],
            slow_frame_penalty_ns: 900,
            ..FaultPlan::default()
        });
    let outcomes = engine
        .try_evaluate_batch_outcomes(&dataset, &[config_with_volume(64), config_with_volume(32)])
        .unwrap();
    // slowed: elapsed before frame k is k*(100+900) → cut at frame 2
    let RunOutcome::TimedOut(slowed) = &outcomes[0] else {
        unreachable!("expected TimedOut, got {:?}", outcomes[0]);
    };
    assert_eq!(slowed.frames.len(), 2);
    // untargeted volume: 5 checks * 100 ns stays inside the budget
    assert!(outcomes[1].is_done());
    assert_eq!(outcomes[1].run().unwrap().frames.len(), 6);
}

// ---------------------------------------------------------------------------
// disk-cache IO errors: degraded to misses, never fatal
// ---------------------------------------------------------------------------

#[test]
fn disk_io_errors_degrade_to_cache_misses() {
    let dataset = tiny_dataset(3);
    let config = config_with_volume(32);
    let dir = scratch_dir("diskerr");
    let faulty_plan = FaultPlan {
        seed: 5,
        disk_error_rate: 1.0,
        ..FaultPlan::default()
    };

    // every store fails: nothing lands on disk, results are unaffected
    let writer = EvalEngine::with_disk_cache(&dir).with_fault_plan(faulty_plan.clone());
    let first = writer.evaluate(&dataset, &config);
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0) == 0,
        "injected store errors must suppress persistence"
    );

    // a healthy engine persists; a faulty reader then treats every load
    // as a miss and silently re-evaluates to the identical run
    let healthy = EvalEngine::with_disk_cache(&dir);
    let persisted = healthy.evaluate(&dataset, &config);
    assert_eq!(persisted.ate.errors, first.ate.errors);
    let reader = EvalEngine::with_disk_cache(&dir).with_fault_plan(faulty_plan);
    let reread = reader.evaluate(&dataset, &config);
    assert_eq!(reread.ate.errors, first.ate.errors);
    let stats = reader.stats();
    assert_eq!(
        stats.disk_hits, 0,
        "injected load errors must read as misses"
    );
    assert_eq!(stats.misses, 1);

    // without injection the same file serves a disk hit
    let clean_reader = EvalEngine::with_disk_cache(&dir);
    let _ = clean_reader.evaluate(&dataset, &config);
    assert_eq!(clean_reader.stats().disk_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// sensor dropout: an all-frames-lost run is a result, not a crash
// ---------------------------------------------------------------------------

#[test]
fn total_sensor_dropout_yields_lost_frames_and_worst_case_ate() {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = 5;
    dc.noise = DepthNoiseModel {
        dropout: 1.0, // every pixel reads as a hole
        ..DepthNoiseModel::ideal()
    };
    let dataset = SyntheticDataset::generate(&dc);
    let config = config_with_volume(64);
    let run = EvalEngine::new().evaluate(&dataset, &config);
    assert_eq!(run.frames.len(), 5);
    assert!(
        run.lost_frames >= 4,
        "blind frames must be flagged lost, got {}",
        run.lost_frames
    );
    assert!(run.ate.max.is_finite());

    // the exploration layer penalises the run with the worst-case error
    // bound instead of trusting its meaningless mid-run ATE
    let m = measure(&dataset, &odroid_xu3(), &encode_config(&config));
    assert_eq!(m.max_ate_m, f64::from(m.config.volume_size));
}

// ---------------------------------------------------------------------------
// orchestrators: quarantines are reported, never fatal
// ---------------------------------------------------------------------------

#[test]
fn explore_reports_quarantined_configs_and_keeps_sweeping() {
    let dataset = tiny_dataset(3);
    // every volume except the default 256 is cursed: proposals landing
    // there quarantine, the sweep and the baseline still complete
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![32, 64, 96, 128, 192],
        ..FaultPlan::default()
    });
    let outcome = explore_with_engine(&engine, &dataset, &odroid_xu3(), &ExploreOptions::fast());
    assert!(
        !outcome.quarantined.is_empty(),
        "cursed volumes must be reported"
    );
    for m in &outcome.measured {
        assert_eq!(m.config.volume_resolution, 256);
    }
    for q in &outcome.quarantined {
        assert!(q.cause.contains("injected persistent fault"));
    }
    assert_eq!(outcome.default_config.config.volume_resolution, 256);
}

#[test]
fn fleet_skips_phones_behind_a_quarantined_run_with_reasons() {
    let dataset = tiny_dataset(4);
    let default_cfg = config_with_volume(192);
    let tuned_cfg = config_with_volume(32);
    let fleet = phone_fleet(2018);
    // curse every reduced capped volume: low-RAM phones lose their
    // default run and are skipped; full-volume phones report normally
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![64, 96, 128],
        ..FaultPlan::default()
    });
    let outcome = fleet_speedups_with_engine(&engine, &dataset, &default_cfg, &tuned_cfg, &fleet);
    assert_eq!(outcome.entries.len() + outcome.skipped.len(), fleet.len());
    let capped: usize = fleet
        .iter()
        .filter(|p| memory_capped_volume(192, p.ram_mb) < 192)
        .count();
    assert!(capped > 0, "fleet must contain memory-constrained phones");
    assert_eq!(outcome.skipped.len(), capped);
    for skip in &outcome.skipped {
        assert!(
            skip.reason.contains("quarantined"),
            "unexpected skip reason: {}",
            skip.reason
        );
    }
    for entry in &outcome.entries {
        assert_eq!(entry.default_volume, 192);
        assert!(entry.speedup > 0.0);
    }
}

#[test]
fn suite_reports_failed_cells_and_fills_the_rest() {
    let sequences = &standard_suite(slam_math::camera::PinholeCamera::tiny(), 4)[..2];
    let configs = vec![
        ("good".to_string(), config_with_volume(32)),
        ("bad".to_string(), config_with_volume(96)),
    ];
    let engine = EvalEngine::new().with_fault_plan(FaultPlan {
        panic_on_volume: vec![96],
        ..FaultPlan::default()
    });
    let report = run_suite_with_engine(&engine, sequences, &configs, &odroid_xu3());
    assert_eq!(report.cells.len(), 2);
    assert_eq!(report.failures.len(), 2);
    for seq in sequences {
        assert!(report.cell(&seq.name, "good").is_ok());
        let err = report.cell(&seq.name, "bad").unwrap_err();
        let SuiteError::CellFailed { cause, .. } = err else {
            unreachable!("expected CellFailed, got {err:?}");
        };
        assert!(cause.contains("injected persistent fault"));
    }
    assert!(matches!(
        report.cell("no/such", "good"),
        Err(SuiteError::NoSuchCell { .. })
    ));
}

// ---------------------------------------------------------------------------
// checkpoint/resume: a killed sweep resumes bit-identically
// ---------------------------------------------------------------------------

#[test]
fn suspended_explore_resumes_bit_identically() {
    let dataset = tiny_dataset(3);
    let device = odroid_xu3();
    let options = ExploreOptions::fast();
    let dir = scratch_dir("ckpt-explore");

    // the uninterrupted reference sweep
    let reference = explore_with_engine(&EvalEngine::new(), &dataset, &device, &options);

    // session 1 "dies" at the first batch boundary past 5 evaluations
    let mut ckpt = CheckpointOptions::new("explore");
    ckpt.dir = dir.clone();
    ckpt.every = 2;
    ckpt.stop_after = Some(5);
    let session1 = explore_checkpointed(&EvalEngine::new(), &dataset, &device, &options, &ckpt);
    let SweepProgress::Suspended { completed, path } = session1 else {
        unreachable!("stop_after must suspend the sweep");
    };
    assert!(completed >= 5 && completed < options.budget);
    assert!(path.exists());

    // session 2: fresh engine (the process was killed), same checkpoint
    ckpt.stop_after = None;
    let engine2 = EvalEngine::new();
    let resumed = explore_checkpointed(&engine2, &dataset, &device, &options, &ckpt)
        .complete()
        .unwrap();
    // only the un-replayed remainder (plus the default baseline) may run
    assert!(engine2.stats().misses <= options.budget - completed + 1);

    let json = |o: &ExploreOutcome| serde_json::to_string(o).unwrap();
    assert_eq!(json(&resumed), json(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suspended_random_sweep_resumes_bit_identically_across_failures() {
    let dataset = tiny_dataset(3);
    let device = odroid_xu3();
    let dir = scratch_dir("ckpt-random");
    let plan = FaultPlan {
        panic_on_volume: vec![96, 128],
        ..FaultPlan::default()
    };
    let n = 10;
    let seed = 77;

    // uninterrupted reference under the same fault plan
    let mut ref_ckpt = CheckpointOptions::new("random-ref");
    ref_ckpt.dir = dir.clone();
    ref_ckpt.resume = false;
    let reference = random_sweep_checkpointed(
        &EvalEngine::new().with_fault_plan(plan.clone()),
        &dataset,
        &device,
        n,
        seed,
        &ref_ckpt,
    )
    .complete()
    .unwrap();

    // session 1 is killed after 4 evaluations
    let mut ckpt = CheckpointOptions::new("random");
    ckpt.dir = dir.clone();
    ckpt.every = 2;
    ckpt.stop_after = Some(4);
    let session1 = random_sweep_checkpointed(
        &EvalEngine::new().with_fault_plan(plan.clone()),
        &dataset,
        &device,
        n,
        seed,
        &ckpt,
    );
    let SweepProgress::Suspended { completed, .. } = session1 else {
        unreachable!("stop_after must suspend the sweep");
    };
    assert_eq!(completed, 4);

    // session 2 resumes on a fresh engine and finishes
    ckpt.stop_after = None;
    let resumed = random_sweep_checkpointed(
        &EvalEngine::new().with_fault_plan(plan),
        &dataset,
        &device,
        n,
        seed,
        &ckpt,
    )
    .complete()
    .unwrap();
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
    assert_eq!(resumed.measured.len() + resumed.quarantined.len(), n);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metadata_mismatch_ignores_the_checkpoint_and_starts_fresh() {
    let dataset = tiny_dataset(3);
    let device = odroid_xu3();
    let dir = scratch_dir("ckpt-mismatch");
    let mut ckpt = CheckpointOptions::new("sweep");
    ckpt.dir = dir.clone();
    let engine = EvalEngine::new();
    let first = random_sweep_checkpointed(&engine, &dataset, &device, 4, 11, &ckpt)
        .complete()
        .unwrap();
    assert_eq!(first.measured.len(), 4);

    // a different seed must not reuse the recorded evaluations
    let engine2 = EvalEngine::new();
    let other = random_sweep_checkpointed(&engine2, &dataset, &device, 4, 12, &ckpt)
        .complete()
        .unwrap();
    assert_eq!(other.measured.len(), 4);
    assert!(engine2.stats().misses > 0);
    assert_ne!(
        serde_json::to_string(&first).unwrap(),
        serde_json::to_string(&other).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
