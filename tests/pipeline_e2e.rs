//! End-to-end integration: synthetic dataset → KinectFusion → trajectory
//! accuracy.

use slam_kfusion::{KFusionConfig, KinectFusion, SlamAlgorithm};
use slam_math::camera::PinholeCamera;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;

/// Runs the pipeline over a dataset and returns per-frame translational
/// errors against ground truth (metres).
fn run_errors(dataset: &SyntheticDataset, config: KFusionConfig) -> Vec<f32> {
    let init = dataset.frames()[0].ground_truth;
    let mut kf = KinectFusion::new(config, *dataset.camera(), init);
    dataset
        .frames()
        .iter()
        .map(|frame| {
            let r = kf.step_frame(&frame.depth_mm);
            r.pose.translation_distance(&frame.ground_truth)
        })
        .collect()
}

fn living_room_tiny(frames: usize, noisy: bool) -> SyntheticDataset {
    let mut cfg = DatasetConfig::living_room();
    cfg.camera = PinholeCamera::tiny();
    cfg.frame_count = frames;
    if !noisy {
        cfg.noise = DepthNoiseModel::ideal();
    }
    SyntheticDataset::generate(&cfg)
}

#[test]
fn tracks_living_room_noise_free() {
    let dataset = living_room_tiny(25, false);
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    config.pyramid_iterations = [6, 4, 3];
    let errors = run_errors(&dataset, config);
    let max = errors.iter().cloned().fold(0.0f32, f32::max);
    assert!(
        max < 0.05,
        "max trajectory error {max} m, errors: {errors:?}"
    );
}

#[test]
fn tracks_living_room_with_kinect_noise() {
    let dataset = living_room_tiny(25, true);
    let mut config = KFusionConfig::fast_test();
    config.volume_resolution = 128;
    config.pyramid_iterations = [6, 4, 3];
    let errors = run_errors(&dataset, config);
    let max = errors.iter().cloned().fold(0.0f32, f32::max);
    assert!(
        max < 0.08,
        "max trajectory error {max} m, errors: {errors:?}"
    );
}

#[test]
fn tiny_volume_degrades_accuracy() {
    let dataset = living_room_tiny(20, false);
    let mut good = KFusionConfig::fast_test();
    good.volume_resolution = 128;
    good.pyramid_iterations = [6, 4, 3];
    let mut coarse = good.clone();
    coarse.volume_resolution = 32;
    let e_good = run_errors(&dataset, good);
    let e_coarse = run_errors(&dataset, coarse);
    let max_good = e_good.iter().cloned().fold(0.0f32, f32::max);
    let max_coarse = e_coarse.iter().cloned().fold(0.0f32, f32::max);
    assert!(
        max_coarse > max_good,
        "coarse volume ({max_coarse}) should be less accurate than fine ({max_good})"
    );
}
