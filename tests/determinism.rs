//! Cross-thread-count determinism of the whole pipeline.
//!
//! The worker-pool kernels partition work into bands whose layout depends
//! only on the data size, and reduce band results in band order — so the
//! estimated trajectory, the accumulated TSDF volume, the extracted mesh
//! and even the measured workload counters must be *bit-identical* no
//! matter how many threads execute them. These tests pin that guarantee
//! end to end; any data race or thread-dependent reduction order breaks
//! them immediately.

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_trace::Tracer;
// xtask-allow: engine-only — reason: this test pins the raw runner's own thread-count determinism
use slambench::run_pipeline_with_threads;
// xtask-allow: engine-only — reason: this test pins that tracing never perturbs the raw runner
use slambench::run_pipeline_traced;
// xtask-allow: engine-only — reason: this test pins the generic driver's cross-algorithm determinism
use slambench::run_algorithm_with_threads;

/// `1` is the canonical serial reference; `7` does not divide the band
/// counts evenly; `0` is the auto knob.
const THREAD_COUNTS: [usize; 4] = [2, 4, 7, 0];

fn tiny_dataset(frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::tiny_test();
    dc.frame_count = frames;
    SyntheticDataset::generate(&dc)
}

fn config() -> KFusionConfig {
    KFusionConfig {
        volume_resolution: 48,
        ..KFusionConfig::fast_test()
    }
}

#[test]
fn trajectory_ate_and_workload_are_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(6);
    // xtask-allow: engine-only — reason: the raw runner is the object under test
    let reference = run_pipeline_with_threads(&dataset, &config(), 1);
    // serde_json is configured with `float_roundtrip`, so two poses print
    // to the same string exactly when every component is bit-identical
    // (modulo the sign of NaN, which a tracked pose never contains)
    let ref_poses: Vec<String> = reference
        .frames
        .iter()
        .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
        .collect();
    let ref_ate = serde_json::to_string(&reference.ate).expect("serialisable ATE");
    let ref_ops = reference.total_workload().total().ops.to_bits();
    for threads in THREAD_COUNTS {
        // xtask-allow: engine-only — reason: the raw runner is the object under test
        let run = run_pipeline_with_threads(&dataset, &config(), threads);
        let poses: Vec<String> = run
            .frames
            .iter()
            .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
            .collect();
        assert_eq!(poses, ref_poses, "poses diverged at threads={threads}");
        assert_eq!(
            serde_json::to_string(&run.ate).expect("serialisable ATE"),
            ref_ate,
            "ATE diverged at threads={threads}"
        );
        assert_eq!(
            run.total_workload().total().ops.to_bits(),
            ref_ops,
            "workload counters diverged at threads={threads}"
        );
        assert_eq!(run.lost_frames, reference.lost_frames);
    }
}

#[test]
fn sparse_backend_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(6);
    let sparse = KFusionConfig {
        volume_backend: slam_kfusion::VolumeBackend::Sparse,
        ..config()
    };
    // xtask-allow: engine-only — reason: the raw runner is the object under test
    let reference = run_pipeline_with_threads(&dataset, &sparse, 1);
    let ref_poses: Vec<String> = reference
        .frames
        .iter()
        .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
        .collect();
    let ref_ate = serde_json::to_string(&reference.ate).expect("serialisable ATE");
    let ref_ops = reference.total_workload().total().ops.to_bits();
    assert!(
        reference.ate.max.is_finite(),
        "sparse reference run produced a finite ATE"
    );
    for threads in THREAD_COUNTS {
        // xtask-allow: engine-only — reason: the raw runner is the object under test
        let run = run_pipeline_with_threads(&dataset, &sparse, threads);
        let poses: Vec<String> = run
            .frames
            .iter()
            .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
            .collect();
        assert_eq!(
            poses, ref_poses,
            "sparse poses diverged at threads={threads}"
        );
        assert_eq!(
            serde_json::to_string(&run.ate).expect("serialisable ATE"),
            ref_ate,
            "sparse ATE diverged at threads={threads}"
        );
        assert_eq!(
            run.total_workload().total().ops.to_bits(),
            ref_ops,
            "sparse workload counters diverged at threads={threads}"
        );
        assert_eq!(run.lost_frames, reference.lost_frames);
    }
}

#[test]
fn sparse_mesh_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(5);
    let fuse = |threads: usize| {
        let cfg = KFusionConfig {
            threads,
            volume_backend: slam_kfusion::VolumeBackend::Sparse,
            ..config()
        };
        let init = dataset.frames()[0].ground_truth;
        let mut alg = AlgoId::KinectFusion.create(&cfg, *dataset.camera(), init);
        for frame in dataset.frames() {
            alg.step_frame(&frame.depth_mm);
        }
        alg.extract_mesh(threads)
            .expect("KinectFusion builds a meshable model")
    };
    let reference = fuse(1);
    assert!(
        reference.triangle_count() > 0,
        "the sparse backend must produce a surface too"
    );
    let ref_vertices: Vec<[u32; 3]> = reference
        .vertices
        .iter()
        .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect();
    for threads in THREAD_COUNTS {
        let mesh = fuse(threads);
        assert_eq!(
            mesh.triangles, reference.triangles,
            "sparse triangles diverged at threads={threads}"
        );
        let vertices: Vec<[u32; 3]> = mesh
            .vertices
            .iter()
            .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
            .collect();
        assert_eq!(
            vertices, ref_vertices,
            "sparse vertex bits diverged at threads={threads}"
        );
    }
}

#[test]
fn tracing_does_not_perturb_thread_count_determinism() {
    let dataset = tiny_dataset(6);
    // xtask-allow: engine-only — reason: the raw runner is the object under test
    let reference = run_pipeline_with_threads(&dataset, &config(), 1);
    let ref_poses: Vec<String> = reference
        .frames
        .iter()
        .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
        .collect();
    let ref_ops = reference.total_workload().total().ops.to_bits();
    for threads in THREAD_COUNTS {
        let cfg = KFusionConfig {
            threads,
            ..config()
        };
        let tracer = Tracer::new();
        // xtask-allow: engine-only — reason: the traced raw runner is the object under test
        let run = run_pipeline_traced(&dataset, &cfg, &tracer);
        let poses: Vec<String> = run
            .frames
            .iter()
            .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
            .collect();
        assert_eq!(
            poses, ref_poses,
            "traced poses diverged at threads={threads}"
        );
        assert_eq!(
            run.total_workload().total().ops.to_bits(),
            ref_ops,
            "traced workload counters diverged at threads={threads}"
        );
        assert!(
            !tracer.drain().is_empty(),
            "the traced run recorded events at threads={threads}"
        );
    }
}

#[test]
fn every_algorithm_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(6);
    for &algo in &AlgoId::ALL {
        // xtask-allow: engine-only — reason: the generic raw driver is the object under test
        let reference = run_algorithm_with_threads(algo, &dataset, &config(), 1);
        let ref_poses: Vec<String> = reference
            .frames
            .iter()
            .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
            .collect();
        let ref_ops = reference.total_workload().total().ops.to_bits();
        // 8 exceeds the band count of some tiny kernels on this dataset,
        // the adversarial end of the oversubscription spectrum
        for threads in [2, 8, 7, 0] {
            // xtask-allow: engine-only — reason: the generic raw driver is the object under test
            let run = run_algorithm_with_threads(algo, &dataset, &config(), threads);
            assert_eq!(run.algorithm, algo);
            let poses: Vec<String> = run
                .frames
                .iter()
                .map(|f| serde_json::to_string(&f.pose).expect("serialisable pose"))
                .collect();
            assert_eq!(
                poses, ref_poses,
                "{algo} poses diverged at threads={threads}"
            );
            assert_eq!(
                run.total_workload().total().ops.to_bits(),
                ref_ops,
                "{algo} workload counters diverged at threads={threads}"
            );
            assert_eq!(run.lost_frames, reference.lost_frames, "{algo}");
        }
    }
}

#[test]
fn extracted_mesh_is_bit_identical_across_thread_counts() {
    let dataset = tiny_dataset(5);
    let fuse = |threads: usize| {
        let cfg = KFusionConfig {
            threads,
            ..config()
        };
        let init = dataset.frames()[0].ground_truth;
        let mut alg = AlgoId::KinectFusion.create(&cfg, *dataset.camera(), init);
        for frame in dataset.frames() {
            alg.step_frame(&frame.depth_mm);
        }
        alg.extract_mesh(threads)
            .expect("KinectFusion builds a meshable model")
    };
    let reference = fuse(1);
    assert!(
        reference.triangle_count() > 0,
        "the tiny scene must produce a surface"
    );
    let ref_vertices: Vec<[u32; 3]> = reference
        .vertices
        .iter()
        .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect();
    for threads in THREAD_COUNTS {
        let mesh = fuse(threads);
        assert_eq!(
            mesh.triangles, reference.triangles,
            "triangles diverged at threads={threads}"
        );
        let vertices: Vec<[u32; 3]> = mesh
            .vertices
            .iter()
            .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
            .collect();
        assert_eq!(
            vertices, ref_vertices,
            "vertex bits diverged at threads={threads}"
        );
    }
}
