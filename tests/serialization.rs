//! Serde round-trips across the crate boundary: configurations, device
//! models, runs and reports must survive JSON (the formats a downstream
//! harness would log).

use slam_kfusion::KFusionConfig;
use slam_power::devices::odroid_xu3;
use slam_power::fleet::phone_fleet;
use slam_power::DeviceModel;
use slambench::engine::EvalEngine;
use slambench::explore::MeasuredConfig;
use slambench_suite::test_dataset;

#[test]
fn kfusion_config_roundtrip() {
    let config = KFusionConfig::default();
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: KFusionConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(config, back);
}

#[test]
fn device_model_roundtrip() {
    let device = odroid_xu3();
    let json = serde_json::to_string(&device).unwrap();
    let back: DeviceModel = serde_json::from_str(&json).unwrap();
    assert_eq!(device, back);
}

#[test]
fn phone_fleet_roundtrip() {
    let fleet = phone_fleet(2018);
    let json = serde_json::to_string(&fleet).unwrap();
    let back: Vec<slam_power::PhoneSpec> = serde_json::from_str(&json).unwrap();
    assert_eq!(fleet, back);
}

#[test]
fn pipeline_run_roundtrip() {
    let dataset = test_dataset(3);
    let run = EvalEngine::new().evaluate(&dataset, &KFusionConfig::fast_test());
    let json = serde_json::to_string(&run).unwrap();
    let back: slambench::run::PipelineRun = serde_json::from_str(&json).unwrap();
    assert_eq!(back.frames.len(), run.frames.len());
    assert!((back.ate.max - run.ate.max).abs() < 1e-12);
    // the workload trace survives, so device costing after reload matches
    let dev = odroid_xu3();
    let a = run.cost_on(&dev).run_cost;
    let b = back.cost_on(&dev).run_cost;
    assert!((a.seconds - b.seconds).abs() < 1e-12);
    assert!((a.joules - b.joules).abs() < 1e-12);
}

#[test]
fn measured_config_roundtrip() {
    let m = MeasuredConfig {
        x: vec![1.0; 10],
        config: KFusionConfig::default(),
        runtime_s: 0.1,
        max_ate_m: 0.03,
        watts: 2.5,
        fps: 10.0,
    };
    let json = serde_json::to_string(&m).unwrap();
    let back: MeasuredConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.x, m.x);
    assert_eq!(back.config, m.config);
}
