//! Head-to-head: every algorithm through the *same* evaluation engine,
//! over the same adversarial scene grid, with no algorithm-specific
//! branches anywhere in the harness.
//!
//! * **The grid fills for everyone.** Both algorithms complete every
//!   cell of the adversarial suite — hostile scenes degrade accuracy,
//!   they must not crash or quarantine a run.
//! * **Engines are deterministic per algorithm.** Re-running the same
//!   grid on a fresh engine reproduces every cell bit-identically.
//! * **The algorithms measurably diverge.** On at least one adversarial
//!   sequence the two algorithms report different accuracy — the suite
//!   can *rank* algorithms, which is the point of the abstraction.

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_power::devices::odroid_xu3;
use slambench::suite::{adversarial_suite, run_suite_algorithm, Sequence, SuiteReport};

fn grid() -> (Vec<Sequence>, Vec<(String, KFusionConfig)>) {
    let sequences = adversarial_suite(PinholeCamera::tiny(), 20);
    let configs = vec![("fast".to_string(), KFusionConfig::fast_test())];
    (sequences, configs)
}

fn run_one(algo: AlgoId) -> SuiteReport {
    let (sequences, configs) = grid();
    run_suite_algorithm(algo, &sequences, &configs, &odroid_xu3())
}

#[test]
fn every_algorithm_fills_the_adversarial_grid() {
    let (sequences, _) = grid();
    for &algo in &AlgoId::ALL {
        let report = run_one(algo);
        assert_eq!(report.algorithm, algo.id());
        assert!(
            report.failures.is_empty(),
            "{algo}: adversarial scenes degrade accuracy, they must not \
             quarantine runs: {:?}",
            report.failures
        );
        assert_eq!(
            report.cells.len(),
            sequences.len(),
            "{algo}: one cell per sequence"
        );
        for cell in &report.cells {
            assert!(
                cell.max_ate_m.is_finite() && cell.fps > 0.0,
                "{algo}: degenerate cell on {}",
                cell.sequence
            );
        }
    }
}

#[test]
fn head_to_head_reruns_are_bit_identical() {
    for &algo in &AlgoId::ALL {
        let first = serde_json::to_string(&run_one(algo)).expect("serialisable report");
        let second = serde_json::to_string(&run_one(algo)).expect("serialisable report");
        assert_eq!(
            first, second,
            "{algo}: a fresh engine must reproduce the grid"
        );
    }
}

#[test]
fn algorithms_measurably_diverge_on_an_adversarial_scene() {
    let kfusion = run_one(AlgoId::KinectFusion);
    let odometry = run_one(AlgoId::PointOdometry);
    let (sequences, _) = grid();
    let diverging = sequences
        .iter()
        .filter(|seq| {
            let kf = kfusion.cell(&seq.name, "fast").expect("kfusion cell");
            let od = odometry.cell(&seq.name, "fast").expect("odometry cell");
            (kf.max_ate_m - od.max_ate_m).abs() > 0.02 || kf.lost_frames != od.lost_frames
        })
        .count();
    assert!(
        diverging >= 1,
        "the adversarial suite must separate the two algorithms on at \
         least one sequence — otherwise it cannot rank them"
    );
    // the suite also separates them on speed: point-based fusion skips
    // the TSDF integrate/raycast kernels entirely, so its modelled frame
    // rate must beat full KinectFusion on every sequence
    for seq in &sequences {
        let kf = kfusion.cell(&seq.name, "fast").expect("kfusion cell");
        let od = odometry.cell(&seq.name, "fast").expect("odometry cell");
        assert!(
            od.fps > kf.fps,
            "{}: point odometry ({:.1} FPS) should outpace KinectFusion ({:.1} FPS)",
            seq.name,
            od.fps,
            kf.fps
        );
    }
}
