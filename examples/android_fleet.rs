//! Fleet example: deploy two configurations across the simulated
//! 83-phone catalogue and see which kinds of devices benefit most — a
//! small-scale version of the `fig3_phones` experiment.
//!
//! Run with `cargo run --release --example android_fleet`.

use slam_kfusion::KFusionConfig;
use slam_math::camera::PinholeCamera;
use slam_power::fleet::{phone_fleet, Tier};
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slambench::engine::EvalEngine;
use slambench::fleet::fleet_speedups_with_engine;

fn main() {
    let mut dataset_config = DatasetConfig::living_room();
    dataset_config.camera = PinholeCamera::tiny();
    dataset_config.frame_count = 15;
    println!("rendering dataset...");
    let dataset = SyntheticDataset::generate(&dataset_config);

    // a deliberately heavy "default" and a lean "tuned" configuration
    let default_config = KFusionConfig {
        volume_resolution: 192,
        ..KFusionConfig::default()
    };
    let tuned_config = KFusionConfig {
        volume_resolution: 96,
        compute_size_ratio: 2,
        pyramid_iterations: [4, 2, 2],
        integration_rate: 2,
        ..KFusionConfig::default()
    };

    let fleet = phone_fleet(2018);
    println!("costing both configurations on {} phones...", fleet.len());
    // the tuned config and each distinct memory-capped default volume run
    // as one concurrent engine batch, then replay onto all 83 phone models
    let outcome = fleet_speedups_with_engine(
        &EvalEngine::new(),
        &dataset,
        &default_config,
        &tuned_config,
        &fleet,
    );
    for skip in &outcome.skipped {
        eprintln!("skipped {}: {}", skip.name, skip.reason);
    }
    let entries = outcome.entries;

    // aggregate per market tier
    println!("\nspeed-up of the tuned configuration, by device tier:");
    for tier in Tier::ALL {
        let tier_speedups: Vec<f64> = entries
            .iter()
            .filter(|e| e.tier == tier)
            .map(|e| e.speedup)
            .collect();
        if tier_speedups.is_empty() {
            continue;
        }
        let mean = tier_speedups.iter().sum::<f64>() / tier_speedups.len() as f64;
        let min = tier_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tier_speedups.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {:?}: {} devices, mean {:.2}x (range {:.2}x - {:.2}x)",
            tier,
            tier_speedups.len(),
            mean,
            min,
            max
        );
    }

    // highlight the extremes
    let best = entries
        .iter()
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite"))
        .expect("non-empty fleet");
    let worst = entries
        .iter()
        .min_by(|a, b| a.speedup.partial_cmp(&b.speedup).expect("finite"))
        .expect("non-empty fleet");
    println!(
        "\nbiggest winner : {} ({}, {} MB RAM, default volume {}³): {:.2}x",
        best.name, best.soc, best.ram_mb, best.default_volume, best.speedup
    );
    println!(
        "smallest winner: {} ({}, {} MB RAM, default volume {}³): {:.2}x",
        worst.name, worst.soc, worst.ram_mb, worst.default_volume, worst.speedup
    );

    let realtime = entries.iter().filter(|e| e.tuned_s <= 1.0 / 30.0).count();
    println!(
        "\nphones reaching 30 FPS with the tuned configuration: {realtime}/{}",
        entries.len()
    );
}
