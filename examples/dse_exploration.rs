//! Design-space exploration example: use the HyperMapper-style active
//! learner to find fast-but-accurate KinectFusion configurations for a
//! target device, then inspect the Pareto front and the extracted rules.
//!
//! This is a scaled-down version of the `fig2_dse` / `fig2_knowledge`
//! experiments — a few dozen evaluations instead of a few hundred.
//!
//! Run with `cargo run --release --example dse_exploration`.

use slam_dse::active::ActiveLearnerOptions;
use slam_dse::knowledge::{KnowledgeTree, LabelledConfigs};
use slam_math::camera::PinholeCamera;
use slam_power::devices::jetson_tk1;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slambench::config_space::slambench_space;
use slambench::engine::EvalEngine;
use slambench::explore::{explore_with_engine, ExploreOptions};

fn main() {
    let mut dataset_config = DatasetConfig::living_room();
    dataset_config.camera = PinholeCamera::tiny();
    dataset_config.frame_count = 20;
    println!("rendering dataset...");
    let dataset = SyntheticDataset::generate(&dataset_config);

    // explore for the Jetson TK1 this time (the figures use the XU3)
    let device = jetson_tk1();
    println!(
        "exploring the configuration space for the {} model...",
        device.name
    );
    let options = ExploreOptions {
        budget: 40,
        learner: ActiveLearnerOptions {
            initial_samples: 20,
            iterations: 6,
            batch_size: 4,
            candidates_per_iteration: 800,
            exploration_fraction: 0.25,
            seed: 1,
            ..ActiveLearnerOptions::default()
        },
        accuracy_limit: 0.05,
        ..ExploreOptions::default()
    };
    // every proposal batch is evaluated concurrently through the engine;
    // the outcome is bit-identical to serial evaluation
    let engine = EvalEngine::new();
    let outcome = explore_with_engine(&engine, &dataset, &device, &options);
    let stats = engine.stats();
    println!(
        "engine: {} pipeline runs, {} cache hits",
        stats.misses, stats.hits
    );

    println!(
        "\nevaluated {} configurations ({} initial random + {} active)",
        outcome.measured.len(),
        outcome.initial_count,
        outcome.measured.len() - outcome.initial_count
    );
    println!(
        "default configuration: {:.1} FPS, max ATE {:.3} m, {:.2} W",
        outcome.default_config.fps, outcome.default_config.max_ate_m, outcome.default_config.watts
    );

    println!("\nPareto front (runtime × accuracy × power):");
    let mut front = outcome.pareto();
    front.sort_by(|a, b| a.runtime_s.partial_cmp(&b.runtime_s).expect("finite"));
    for m in front.iter().take(8) {
        println!(
            "  {:.1} FPS, ATE {:.3} m, {:.2} W  <- {}",
            m.fps, m.max_ate_m, m.watts, m.config
        );
    }

    match outcome.best_feasible() {
        Some(best) => {
            println!("\nbest feasible (max ATE < {} m):", outcome.accuracy_limit);
            println!(
                "  {:.1} FPS ({:.2}x the default), {:.2} W\n  {}",
                best.fps,
                outcome.default_config.runtime_s / best.runtime_s,
                best.watts,
                best.config
            );
        }
        None => println!("\nno feasible configuration found at this tiny budget"),
    }

    // knowledge extraction over everything we measured
    let labels: Vec<f64> = outcome
        .measured
        .iter()
        .map(|m| f64::from(u8::from(m.max_ate_m <= 0.05 && m.fps >= 30.0)))
        .collect();
    let data = LabelledConfigs {
        x: outcome.measured.iter().map(|m| m.x.clone()).collect(),
        labels,
        class_names: vec!["rejected".into(), "accurate & fast".into()],
    };
    let tree = KnowledgeTree::fit(&slambench_space(), &data, 3);
    println!(
        "\nwhat makes a configuration good on this device?\n{}",
        tree.render()
    );
}
