//! Live dashboard: the terminal analogue of the SLAMBench GUI (the
//! paper's Figure 1) — per-frame tracking status, speed, power and
//! accuracy, plus an ASCII rendering of the reconstructed model raycast
//! from the current pose.
//!
//! Run with `cargo run --release --example live_dashboard`.

use slam_kfusion::{KFusionConfig, KinectFusion, SlamAlgorithm};
use slam_math::camera::PinholeCamera;
use slam_power::devices::odroid_xu3;
use slam_power::EnergyMeter;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};

/// Renders the model's predicted depth as ASCII art (near = dark glyphs).
fn ascii_model(kf: &KinectFusion, cols: usize, rows: usize) -> String {
    const RAMP: &[u8] = b"@%#*+=-:. ";
    let mut out = String::new();
    let Some(model) = kf.model() else {
        return "(no model yet)".into();
    };
    let cam = kf.compute_camera();
    let origin = kf.current_pose().translation();
    for r in 0..rows {
        for c in 0..cols {
            let x = c * cam.width / cols;
            let y = r * cam.height / rows;
            let v = model.vertices.get(x, y);
            let ch = if model.is_valid(x, y) {
                let depth = (v - origin).norm();
                let t = ((depth - 0.5) / 3.0).clamp(0.0, 0.999);
                RAMP[(t * RAMP.len() as f32) as usize] as char
            } else {
                ' '
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let mut dataset_config = DatasetConfig::living_room();
    dataset_config.camera = PinholeCamera::tiny();
    dataset_config.frame_count = 30;
    println!("rendering dataset...");
    let dataset = SyntheticDataset::generate(&dataset_config);

    let mut config = KFusionConfig::default();
    config.volume_resolution = 128;
    let init = dataset.frames()[0].ground_truth;
    let mut kf = KinectFusion::new(config, *dataset.camera(), init);
    let mut meter = EnergyMeter::new(odroid_xu3());

    println!("frame | track |   FPS(XU3) | power(W) | ATE(m) | matched");
    println!("------+-------+------------+----------+--------+--------");
    for frame in dataset.frames() {
        let result = kf.step_frame(&frame.depth_mm);
        let cost = meter.record_frame(&result.workload);
        let ate = result.pose.translation_distance(&frame.ground_truth);
        println!(
            "{:>5} | {:^5} | {:>10.1} | {:>8.2} | {:.4} | {:>5.1}%",
            frame.index,
            if result.tracked { "ok" } else { "LOST" },
            1.0 / cost.seconds,
            cost.average_watts(),
            ate,
            result.matched_fraction * 100.0,
        );
    }

    println!("\nreconstructed model (raycast from the final pose):\n");
    println!("{}", ascii_model(&kf, 96, 28));
    println!("{}", meter.run_cost());
}
