//! Quickstart: generate a synthetic RGB-D sequence, run KinectFusion over
//! it, and report SLAMBench's three metrics — speed, accuracy, power —
//! on an embedded device model.
//!
//! Run with `cargo run --release --example quickstart`.

use slam_kfusion::{AlgoId, KFusionConfig};
use slam_math::camera::PinholeCamera;
use slam_power::devices::odroid_xu3;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_trace::Tracer;
use slambench::engine::EvalEngine;

fn main() {
    // 1. a dataset: the living-room scene rendered along a known
    //    trajectory (the workspace's ICL-NUIM stand-in). Quarter
    //    resolution keeps this example snappy.
    let mut dataset_config = DatasetConfig::living_room();
    dataset_config.camera = PinholeCamera::tiny();
    dataset_config.frame_count = 40;
    println!(
        "rendering {} frames of '{}'...",
        dataset_config.frame_count, dataset_config.name
    );
    let dataset = SyntheticDataset::generate(&dataset_config);

    // 2. a configuration: SLAMBench's defaults, with a smaller TSDF
    //    volume so the example finishes in seconds.
    let mut config = KFusionConfig::default();
    config.volume_resolution = 128;
    println!("running KinectFusion [{config}]...");

    // 3. run the pipeline through the evaluation engine (device-
    //    independent: poses + workload trace). The engine carries an
    //    explicit algorithm handle — swap in `AlgoId::PointOdometry` to
    //    run the frame-to-frame tracker over the same dataset. Repeated
    //    requests for the same (algorithm, dataset, configuration)
    //    triple are cache hits.
    let engine = EvalEngine::new().with_algorithm(AlgoId::KinectFusion);
    let run = engine.evaluate(&dataset, &config);

    // 4. accuracy: absolute trajectory error vs the exact ground truth
    println!("\naccuracy:");
    println!("  {}", run.ate);
    println!("  tracking failures: {}", run.lost_frames);

    // 5. speed & power: replay the workload trace on the ODROID XU3 model
    let xu3 = odroid_xu3();
    let report = run.cost_on(&xu3);
    println!("\non the {} model:", xu3.name);
    println!("  {}", report.run_cost);
    println!(
        "  worst frame: {:.1} ms",
        report.timing.max_frame_time() * 1e3
    );
    println!(
        "  frames within the 30 FPS budget: {:.0}%",
        report.timing.realtime_fraction(30.0) * 100.0
    );
    println!("  dominant kernel: {}", report.dominant_kernel());

    // 6. the model itself: how much of the scene was reconstructed
    println!("\nreconstruction:");
    let occupied = run.frames.len(); // frames integrated (all, at rate 1)
    println!("  integrated frames: {occupied}");
    println!(
        "  max ATE {:.1} cm — the paper's quality bar is 5 cm",
        run.ate.max * 100.0
    );

    // 7. observability: re-run a short prefix with a tracer attached —
    //    hierarchical frame/kernel/band spans and counters, aggregated
    //    into the per-kernel table below (the same trace exports to
    //    Perfetto via `trace.to_chrome_json()`)
    let mut short = dataset_config.clone();
    short.frame_count = 5;
    let tracer = Tracer::new();
    let traced = EvalEngine::new()
        .with_algorithm(AlgoId::KinectFusion)
        .with_tracer(tracer.clone());
    traced.evaluate(&SyntheticDataset::generate(&short), &config);
    let trace = tracer.drain();
    println!(
        "\nmeasured host profile ({} events over 5 frames):",
        trace.len()
    );
    print!("{}", trace.profile().render());
    println!(
        "  ICP iterations: {}",
        trace.counter_total("icp.iterations")
    );
}
