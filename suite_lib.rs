//! Shared helpers for the workspace-level integration tests and examples.
//!
//! The real library surface lives in the `crates/` members; this crate
//! only exists so `tests/` and `examples/` at the repository root have a
//! package to belong to.

#![deny(unsafe_code)]

use slam_math::camera::PinholeCamera;
use slam_scene::dataset::{DatasetConfig, SyntheticDataset};
use slam_scene::noise::DepthNoiseModel;

/// A small, fast living-room dataset for integration tests: 160×120,
/// noise-free depth, configurable length.
pub fn test_dataset(frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::living_room();
    dc.camera = PinholeCamera::tiny();
    dc.frame_count = frames;
    dc.noise = DepthNoiseModel::ideal();
    SyntheticDataset::generate(&dc)
}

/// Same as [`test_dataset`] but with Kinect-style sensor noise.
pub fn noisy_test_dataset(frames: usize) -> SyntheticDataset {
    let mut dc = DatasetConfig::living_room();
    dc.camera = PinholeCamera::tiny();
    dc.frame_count = frames;
    SyntheticDataset::generate(&dc)
}
